#include "kasm/builder.hpp"

#include <stdexcept>

namespace virec::kasm {

ProgramBuilder& ProgramBuilder::label(const std::string& name) {
  if (!labels_.emplace(name, code_.size()).second) {
    throw std::invalid_argument("duplicate label '" + name + "'");
  }
  return *this;
}

ProgramBuilder& ProgramBuilder::alu(Op op, RegId rd, RegId rn, RegId rm) {
  isa::Inst inst;
  inst.op = op;
  inst.rd = rd;
  inst.rn = rn;
  inst.rm = rm;
  return emit(inst);
}

ProgramBuilder& ProgramBuilder::alu_imm(Op op, RegId rd, RegId rn, i64 imm) {
  isa::Inst inst;
  inst.op = op;
  inst.rd = rd;
  inst.rn = rn;
  inst.imm = imm;
  return emit(inst);
}

ProgramBuilder& ProgramBuilder::add(RegId rd, RegId rn, RegId rm) { return alu(Op::kAdd, rd, rn, rm); }
ProgramBuilder& ProgramBuilder::sub(RegId rd, RegId rn, RegId rm) { return alu(Op::kSub, rd, rn, rm); }
ProgramBuilder& ProgramBuilder::mul(RegId rd, RegId rn, RegId rm) { return alu(Op::kMul, rd, rn, rm); }
ProgramBuilder& ProgramBuilder::udiv(RegId rd, RegId rn, RegId rm) { return alu(Op::kUdiv, rd, rn, rm); }
ProgramBuilder& ProgramBuilder::sdiv(RegId rd, RegId rn, RegId rm) { return alu(Op::kSdiv, rd, rn, rm); }
ProgramBuilder& ProgramBuilder::and_(RegId rd, RegId rn, RegId rm) { return alu(Op::kAnd, rd, rn, rm); }
ProgramBuilder& ProgramBuilder::orr(RegId rd, RegId rn, RegId rm) { return alu(Op::kOrr, rd, rn, rm); }
ProgramBuilder& ProgramBuilder::eor(RegId rd, RegId rn, RegId rm) { return alu(Op::kEor, rd, rn, rm); }
ProgramBuilder& ProgramBuilder::lsl(RegId rd, RegId rn, RegId rm) { return alu(Op::kLsl, rd, rn, rm); }
ProgramBuilder& ProgramBuilder::lsr(RegId rd, RegId rn, RegId rm) { return alu(Op::kLsr, rd, rn, rm); }
ProgramBuilder& ProgramBuilder::asr(RegId rd, RegId rn, RegId rm) { return alu(Op::kAsr, rd, rn, rm); }

ProgramBuilder& ProgramBuilder::madd(RegId rd, RegId rn, RegId rm, RegId ra) {
  isa::Inst inst;
  inst.op = Op::kMadd;
  inst.rd = rd;
  inst.rn = rn;
  inst.rm = rm;
  inst.ra = ra;
  return emit(inst);
}

ProgramBuilder& ProgramBuilder::add_imm(RegId rd, RegId rn, i64 imm) { return alu_imm(Op::kAddImm, rd, rn, imm); }
ProgramBuilder& ProgramBuilder::sub_imm(RegId rd, RegId rn, i64 imm) { return alu_imm(Op::kSubImm, rd, rn, imm); }
ProgramBuilder& ProgramBuilder::and_imm(RegId rd, RegId rn, i64 imm) { return alu_imm(Op::kAndImm, rd, rn, imm); }
ProgramBuilder& ProgramBuilder::orr_imm(RegId rd, RegId rn, i64 imm) { return alu_imm(Op::kOrrImm, rd, rn, imm); }
ProgramBuilder& ProgramBuilder::eor_imm(RegId rd, RegId rn, i64 imm) { return alu_imm(Op::kEorImm, rd, rn, imm); }
ProgramBuilder& ProgramBuilder::lsl_imm(RegId rd, RegId rn, i64 imm) { return alu_imm(Op::kLslImm, rd, rn, imm); }
ProgramBuilder& ProgramBuilder::lsr_imm(RegId rd, RegId rn, i64 imm) { return alu_imm(Op::kLsrImm, rd, rn, imm); }
ProgramBuilder& ProgramBuilder::asr_imm(RegId rd, RegId rn, i64 imm) { return alu_imm(Op::kAsrImm, rd, rn, imm); }

ProgramBuilder& ProgramBuilder::mov(RegId rd, RegId rm) {
  isa::Inst inst;
  inst.op = Op::kMov;
  inst.rd = rd;
  inst.rm = rm;
  return emit(inst);
}

ProgramBuilder& ProgramBuilder::mov_imm(RegId rd, i64 imm) {
  isa::Inst inst;
  inst.op = Op::kMovImm;
  inst.rd = rd;
  inst.imm = imm;
  return emit(inst);
}

ProgramBuilder& ProgramBuilder::movk(RegId rd, i64 imm16, int lane) {
  isa::Inst inst;
  inst.op = Op::kMovk;
  inst.rd = rd;
  inst.imm = imm16;
  inst.imm2 = static_cast<u8>(lane);
  return emit(inst);
}

ProgramBuilder& ProgramBuilder::mvn(RegId rd, RegId rm) {
  isa::Inst inst;
  inst.op = Op::kMvn;
  inst.rd = rd;
  inst.rm = rm;
  return emit(inst);
}

ProgramBuilder& ProgramBuilder::fadd(RegId rd, RegId rn, RegId rm) { return alu(Op::kFadd, rd, rn, rm); }
ProgramBuilder& ProgramBuilder::fsub(RegId rd, RegId rn, RegId rm) { return alu(Op::kFsub, rd, rn, rm); }
ProgramBuilder& ProgramBuilder::fmul(RegId rd, RegId rn, RegId rm) { return alu(Op::kFmul, rd, rn, rm); }
ProgramBuilder& ProgramBuilder::fdiv(RegId rd, RegId rn, RegId rm) { return alu(Op::kFdiv, rd, rn, rm); }

ProgramBuilder& ProgramBuilder::fmadd(RegId rd, RegId rn, RegId rm, RegId ra) {
  isa::Inst inst;
  inst.op = Op::kFmadd;
  inst.rd = rd;
  inst.rn = rn;
  inst.rm = rm;
  inst.ra = ra;
  return emit(inst);
}

ProgramBuilder& ProgramBuilder::scvtf(RegId rd, RegId rn) {
  isa::Inst inst;
  inst.op = Op::kScvtf;
  inst.rd = rd;
  inst.rn = rn;
  return emit(inst);
}

ProgramBuilder& ProgramBuilder::fcvtzs(RegId rd, RegId rn) {
  isa::Inst inst;
  inst.op = Op::kFcvtzs;
  inst.rd = rd;
  inst.rn = rn;
  return emit(inst);
}

ProgramBuilder& ProgramBuilder::cmp(RegId rn, RegId rm) {
  isa::Inst inst;
  inst.op = Op::kCmp;
  inst.rn = rn;
  inst.rm = rm;
  return emit(inst);
}

ProgramBuilder& ProgramBuilder::cmp_imm(RegId rn, i64 imm) {
  isa::Inst inst;
  inst.op = Op::kCmpImm;
  inst.rn = rn;
  inst.imm = imm;
  return emit(inst);
}

ProgramBuilder& ProgramBuilder::branch(Op op, Cond cond, RegId rn,
                                       const std::string& target) {
  isa::Inst inst;
  inst.op = op;
  inst.cond = cond;
  inst.rn = rn;
  fixups_.emplace_back(code_.size(), target);
  return emit(inst);
}

ProgramBuilder& ProgramBuilder::b(const std::string& target) {
  return branch(Op::kB, Cond::kAl, isa::kNoReg, target);
}
ProgramBuilder& ProgramBuilder::b_cond(Cond cond, const std::string& target) {
  return branch(Op::kBcond, cond, isa::kNoReg, target);
}
ProgramBuilder& ProgramBuilder::cbz(RegId rn, const std::string& target) {
  return branch(Op::kCbz, Cond::kAl, rn, target);
}
ProgramBuilder& ProgramBuilder::cbnz(RegId rn, const std::string& target) {
  return branch(Op::kCbnz, Cond::kAl, rn, target);
}
ProgramBuilder& ProgramBuilder::bl(const std::string& target) {
  return branch(Op::kBl, Cond::kAl, isa::kNoReg, target);
}

ProgramBuilder& ProgramBuilder::ret(RegId rn) {
  isa::Inst inst;
  inst.op = Op::kRet;
  inst.rn = rn;
  return emit(inst);
}

ProgramBuilder& ProgramBuilder::memop(Op op, RegId rd, RegId rn, RegId rm,
                                      u8 shift, i64 imm, MemMode mode) {
  isa::Inst inst;
  inst.op = op;
  inst.rd = rd;
  inst.rn = rn;
  inst.rm = rm;
  inst.shift = shift;
  inst.imm = imm;
  inst.mem_mode = mode;
  return emit(inst);
}

ProgramBuilder& ProgramBuilder::ldr(RegId rd, RegId rn, i64 imm, Op op) {
  return memop(op, rd, rn, isa::kNoReg, 0, imm, MemMode::kOffset);
}
ProgramBuilder& ProgramBuilder::ldr(RegId rd, RegId rn, RegId rm, u8 shift,
                                    Op op) {
  return memop(op, rd, rn, rm, shift, 0, MemMode::kRegOffset);
}
ProgramBuilder& ProgramBuilder::ldr_post(RegId rd, RegId rn, i64 imm, Op op) {
  return memop(op, rd, rn, isa::kNoReg, 0, imm, MemMode::kPostIndex);
}
ProgramBuilder& ProgramBuilder::ldr_pre(RegId rd, RegId rn, i64 imm, Op op) {
  return memop(op, rd, rn, isa::kNoReg, 0, imm, MemMode::kPreIndex);
}
ProgramBuilder& ProgramBuilder::str(RegId rd, RegId rn, i64 imm, Op op) {
  return memop(op, rd, rn, isa::kNoReg, 0, imm, MemMode::kOffset);
}
ProgramBuilder& ProgramBuilder::str(RegId rd, RegId rn, RegId rm, u8 shift,
                                    Op op) {
  return memop(op, rd, rn, rm, shift, 0, MemMode::kRegOffset);
}
ProgramBuilder& ProgramBuilder::str_post(RegId rd, RegId rn, i64 imm, Op op) {
  return memop(op, rd, rn, isa::kNoReg, 0, imm, MemMode::kPostIndex);
}
ProgramBuilder& ProgramBuilder::str_pre(RegId rd, RegId rn, i64 imm, Op op) {
  return memop(op, rd, rn, isa::kNoReg, 0, imm, MemMode::kPreIndex);
}

ProgramBuilder& ProgramBuilder::nop() {
  isa::Inst inst;
  inst.op = Op::kNop;
  return emit(inst);
}

ProgramBuilder& ProgramBuilder::halt() {
  isa::Inst inst;
  inst.op = Op::kHalt;
  return emit(inst);
}

ProgramBuilder& ProgramBuilder::emit(isa::Inst inst) {
  code_.push_back(inst);
  return *this;
}

Program ProgramBuilder::build() const {
  std::vector<isa::Inst> code = code_;
  for (const auto& [index, name] : fixups_) {
    auto it = labels_.find(name);
    if (it == labels_.end()) {
      throw std::invalid_argument("unresolved label '" + name + "'");
    }
    code[index].target = static_cast<i64>(it->second);
  }
  Program program(std::move(code), labels_);
  program.validate();
  return program;
}

}  // namespace virec::kasm
