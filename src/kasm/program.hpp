// A Program is the unit of offload: a fully-resolved instruction
// sequence plus label metadata. Thread contexts launched onto a
// near-memory core all share one Program and differ only in their
// initial register values (see sim/system.hpp).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "isa/inst.hpp"

namespace virec::kasm {

class Program {
 public:
  Program() = default;
  Program(std::vector<isa::Inst> code, std::map<std::string, u64> labels);

  const std::vector<isa::Inst>& code() const { return code_; }
  const isa::Inst& at(u64 pc) const { return code_[pc]; }
  u64 size() const { return code_.size(); }
  bool empty() const { return code_.empty(); }

  /// Instruction index of @p label; throws std::out_of_range if absent.
  u64 label(const std::string& name) const;
  const std::map<std::string, u64>& labels() const { return labels_; }

  /// Check structural invariants: every branch target is a valid
  /// instruction index and every path can reach a halt. Throws
  /// std::invalid_argument on violation.
  void validate() const;

  /// Full listing with addresses and label annotations.
  std::string listing() const;

 private:
  std::vector<isa::Inst> code_;
  std::map<std::string, u64> labels_;
};

}  // namespace virec::kasm
