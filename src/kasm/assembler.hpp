// Text assembler for the NMP ISA. Accepts the same syntax the
// disassembler emits plus labels and comments:
//
//   // gather inner loop
//   loop:
//     ldr   x6, [x2, x5, lsl #3]
//     ldrsw x7, [x3], #8
//     add   x8, x8, x7
//     add   x5, x5, #1
//     cmp   x5, x4
//     b.lt  loop
//     halt
//
// Comments start with "//", ";" or "#" at the start of a token.
// Immediates are written "#N" (decimal or 0x hex). Branch targets are
// labels or absolute "@N" indices.
#pragma once

#include <stdexcept>
#include <string>

#include "kasm/program.hpp"

namespace virec::kasm {

/// Error with line information.
class AsmError : public std::runtime_error {
 public:
  AsmError(int line, const std::string& what)
      : std::runtime_error("line " + std::to_string(line) + ": " + what),
        line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

/// Assemble @p source into a validated Program. Throws AsmError.
Program assemble(const std::string& source);

}  // namespace virec::kasm
