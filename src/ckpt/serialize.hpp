// Binary state serialization for crash-safe snapshots (docs/
// checkpointing.md). An Encoder is an append-only little-endian byte
// sink; a Decoder walks the same bytes back with strict bounds
// checking, so a truncated or corrupted payload surfaces as a
// CkptError instead of silently restoring garbage.
//
// Components implement the Serializable interface (or plain
// save_state/restore_state member functions for sub-components owned
// by a Serializable parent). The invariant every implementation must
// keep: restore_state(save_state(x)) reproduces x exactly — the
// checkpoint tests assert bit-identical simulation results after a
// save/restore round trip.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace virec::ckpt {

/// Every checkpoint-layer failure (I/O, bounds, CRC, version or config
/// mismatch) throws this.
class CkptError : public std::runtime_error {
 public:
  explicit CkptError(const std::string& what) : std::runtime_error(what) {}
};

/// CRC-32 (IEEE 802.3 polynomial, the zlib convention).
u32 crc32(const void* data, std::size_t size, u32 seed = 0);

/// Append-only little-endian byte sink.
class Encoder {
 public:
  void put_u8(u8 v) { bytes_.push_back(v); }
  void put_bool(bool v) { put_u8(v ? 1 : 0); }
  void put_u16(u16 v) {
    put_u8(static_cast<u8>(v));
    put_u8(static_cast<u8>(v >> 8));
  }
  void put_u32(u32 v) {
    put_u16(static_cast<u16>(v));
    put_u16(static_cast<u16>(v >> 16));
  }
  void put_u64(u64 v) {
    put_u32(static_cast<u32>(v));
    put_u32(static_cast<u32>(v >> 32));
  }
  void put_i64(i64 v) { put_u64(static_cast<u64>(v)); }
  /// Doubles travel by bit pattern: restore is exact, never a reparse.
  void put_f64(double v);
  void put_str(const std::string& s) {
    put_u32(static_cast<u32>(s.size()));
    raw(s.data(), s.size());
  }
  void raw(const void* data, std::size_t size);

  void put_u64_vec(const std::vector<u64>& v) {
    put_u32(static_cast<u32>(v.size()));
    for (u64 x : v) put_u64(x);
  }
  void put_cycle_vec(const std::vector<Cycle>& v) {
    put_u32(static_cast<u32>(v.size()));
    for (Cycle x : v) put_u64(x);
  }

  const std::vector<u8>& bytes() const { return bytes_; }
  std::size_t size() const { return bytes_.size(); }

 private:
  std::vector<u8> bytes_;
};

/// Bounds-checked reader over an encoded payload. Does not own the
/// bytes; the CheckpointReader (or test) that produced them must
/// outlive the Decoder.
class Decoder {
 public:
  Decoder(const u8* data, std::size_t size, std::string context = "payload")
      : data_(data), size_(size), context_(std::move(context)) {}

  u8 get_u8() {
    need(1);
    return data_[pos_++];
  }
  bool get_bool() { return get_u8() != 0; }
  u16 get_u16() {
    const u16 lo = get_u8();
    return static_cast<u16>(lo | (static_cast<u16>(get_u8()) << 8));
  }
  u32 get_u32() {
    const u32 lo = get_u16();
    return lo | (static_cast<u32>(get_u16()) << 16);
  }
  u64 get_u64() {
    const u64 lo = get_u32();
    return lo | (static_cast<u64>(get_u32()) << 32);
  }
  i64 get_i64() { return static_cast<i64>(get_u64()); }
  double get_f64();
  std::string get_str();
  void raw(void* out, std::size_t size);

  std::vector<u64> get_u64_vec() {
    const u32 n = get_u32();
    std::vector<u64> v;
    v.reserve(n);
    for (u32 i = 0; i < n; ++i) v.push_back(get_u64());
    return v;
  }
  std::vector<Cycle> get_cycle_vec() { return get_u64_vec(); }

  void skip(std::size_t n) {
    need(n);
    pos_ += n;
  }
  std::size_t remaining() const { return size_ - pos_; }
  bool done() const { return pos_ == size_; }
  /// Restore must consume the section exactly; trailing bytes mean the
  /// snapshot and the code disagree about the format.
  void finish() const;

 private:
  void need(std::size_t n) const;

  const u8* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  std::string context_;
};

/// Save/restore interface implemented by every stateful component that
/// owns a checkpoint section (cores, context managers, caches, DRAM,
/// the crossbar, the functional memory, stat sets, ...).
class Serializable {
 public:
  virtual ~Serializable() = default;
  virtual void save_state(Encoder& enc) const = 0;
  virtual void restore_state(Decoder& dec) = 0;
};

}  // namespace virec::ckpt
