// Canonical binary encoding of experiment points (sim::RunSpec) and
// their outcomes (sim::RunResult), shared by three consumers that must
// agree byte-for-byte:
//
//   * hashing — ckpt::spec_hash is FNV-1a over the *identity* bytes,
//     so the sweep journal, the svc::ResultStore and the virec-simd
//     protocol all key an experiment point the same way;
//   * the persistent result store — entries embed the identity bytes
//     and verify them on lookup, so a hash collision or a codec change
//     degrades to a cache miss, never a wrong result;
//   * the wire protocol — virec-simd requests/responses carry specs
//     and results as hex-encoded codec bytes, so a client reassembles
//     bit-identical doubles (CSV/JSON output matches a local run).
//
// Identity vs wire encoding: encode_spec_identity covers every field
// that changes the simulated outcome. It deliberately excludes `check`
// (validation-only: a checked run produces the same RunResult) and
// `no_skip` (event skipping is bit-identical by construction, enforced
// by tests/test_skip.cpp) — so a checked or stepped client request can
// be served from a cached unchecked/skipping run. encode_spec is the
// full wire form: identity plus those run-mode flags.
#pragma once

#include "ckpt/serialize.hpp"
#include "sim/system.hpp"
#include "sim/runner.hpp"

namespace virec::ckpt {

/// Bumped whenever the canonical encoding changes incompatibly. Decoded
/// payloads with a different version throw CkptError; store entries
/// with a different version read as misses.
inline constexpr u32 kSpecCodecVersion = 2;

/// Append the identity bytes of @p spec (outcome-defining fields only;
/// see file comment) to @p enc. Field order is part of the format.
void encode_spec_identity(Encoder& enc, const sim::RunSpec& spec);

/// Full wire encoding: codec version, identity bytes, run-mode flags.
void encode_spec(Encoder& enc, const sim::RunSpec& spec);

/// Inverse of encode_spec. Throws CkptError on a codec-version
/// mismatch or malformed payload.
sim::RunSpec decode_spec(Decoder& dec);

/// Wire/store encoding of a completed result (all fields, doubles by
/// bit pattern).
void encode_result(Encoder& enc, const sim::RunResult& result);
sim::RunResult decode_result(Decoder& dec);

/// Deterministic identity hash of an experiment point: FNV-1a over
/// encode_spec_identity's bytes. Two specs collide only if they
/// describe the same simulated outcome (module the 64-bit hash; the
/// result store additionally verifies the identity bytes).
u64 spec_hash(const sim::RunSpec& spec);

/// FNV-1a over arbitrary bytes (exposed for reuse; seed with
/// kFnvOffsetBasis).
inline constexpr u64 kFnvOffsetBasis = 0xcbf29ce484222325ull;
u64 fnv1a(u64 h, const void* data, std::size_t size);

/// Bumped whenever the functional-stream record format or the golden
/// schedule model changes: streams persisted by an older build then
/// read as misses instead of replaying a stale schedule.
inline constexpr u32 kFuncStreamVersion = 1;

/// Functional identity of an experiment point: hash over exactly the
/// fields that shape the functional tier's instruction stream and
/// warm-event sequence — workload + parameters, topology
/// (num_cores/threads_per_core) and the dcache geometry that drives
/// switch-on-miss scheduling. Deliberately EXCLUDES the replacement
/// policy, scheme, phys_regs/context_fraction, dcache latency and the
/// sample plan: points differing only in those replay the same stream
/// (the whole point of stream reuse). Returns 0 for specs the stream
/// cache must not serve (multi-core).
u64 functional_stream_hash(const sim::RunSpec& spec);

}  // namespace virec::ckpt
