#include "ckpt/serialize.hpp"

#include <array>
#include <cstring>

namespace virec::ckpt {

namespace {

std::array<u32, 256> make_crc_table() {
  std::array<u32, 256> table{};
  for (u32 i = 0; i < 256; ++i) {
    u32 c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

u32 crc32(const void* data, std::size_t size, u32 seed) {
  static const std::array<u32, 256> table = make_crc_table();
  const u8* p = static_cast<const u8*>(data);
  u32 c = seed ^ 0xffffffffu;
  for (std::size_t i = 0; i < size; ++i) {
    c = table[(c ^ p[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

void Encoder::put_f64(double v) {
  u64 bits;
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(bits);
}

void Encoder::raw(const void* data, std::size_t size) {
  const u8* p = static_cast<const u8*>(data);
  bytes_.insert(bytes_.end(), p, p + size);
}

void Decoder::need(std::size_t n) const {
  if (size_ - pos_ < n) {
    throw CkptError("checkpoint " + context_ + ": truncated (need " +
                    std::to_string(n) + " bytes at offset " +
                    std::to_string(pos_) + " of " + std::to_string(size_) +
                    ")");
  }
}

double Decoder::get_f64() {
  const u64 bits = get_u64();
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::string Decoder::get_str() {
  const u32 n = get_u32();
  need(n);
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

void Decoder::raw(void* out, std::size_t size) {
  need(size);
  std::memcpy(out, data_ + pos_, size);
  pos_ += size;
}

void Decoder::finish() const {
  if (!done()) {
    throw CkptError("checkpoint " + context_ + ": " +
                    std::to_string(remaining()) +
                    " trailing bytes after restore (format mismatch)");
  }
}

}  // namespace virec::ckpt
