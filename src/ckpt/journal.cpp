#include "ckpt/journal.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "ckpt/serialize.hpp"
#include "common/version.hpp"

namespace virec::ckpt {

namespace {

// VJ2 appended the 13 cycle-accounting buckets. VJ1 lines fail the tag
// check and are silently re-run — safe, just slower on first resume.
constexpr const char* kLineTag = "VJ2";
// Header line written once at the top of a fresh journal: the build
// provenance of the producer. Skipped like any foreign tag on load.
constexpr const char* kHeaderTag = "VJH";

u64 f64_bits(double v) {
  u64 bits;
  std::memcpy(&bits, &v, sizeof bits);
  return bits;
}

double bits_f64(u64 bits) {
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::string framed_line(const std::string& body) {
  char crc_hex[16];
  std::snprintf(crc_hex, sizeof crc_hex, " %08x",
                crc32(body.data(), body.size()));
  return body + crc_hex + "\n";
}

}  // namespace

SweepJournal::~SweepJournal() {
  if (fd_ >= 0) ::close(fd_);
}

std::size_t SweepJournal::load() {
  entries_.clear();
  provenance_.clear();
  std::ifstream in(path_);
  if (!in) return 0;  // no journal yet: nothing completed
  std::string line;
  while (std::getline(in, line)) {
    // A torn trailing line (killed mid-append) has no terminating
    // newline; getline still yields it, but its CRC will not match.
    const std::size_t crc_at = line.rfind(' ');
    if (crc_at == std::string::npos) continue;
    const std::string body = line.substr(0, crc_at);
    u32 expected_crc = 0;
    if (std::sscanf(line.c_str() + crc_at + 1, "%" SCNx32, &expected_crc) !=
        1) {
      continue;
    }
    if (crc32(body.data(), body.size()) != expected_crc) continue;

    if (body.rfind(std::string(kHeaderTag) + " ", 0) == 0) {
      provenance_ = body.substr(std::strlen(kHeaderTag) + 1);
      continue;
    }

    char tag[8] = {0};
    u64 hash = 0, cycles = 0, instructions = 0, switches = 0, fills = 0,
        spills = 0, ipc_bits = 0, hit_bits = 0, miss_bits = 0;
    int consumed = 0;
    const int n = std::sscanf(
        body.c_str(),
        "%7s %" SCNx64 " %" SCNu64 " %" SCNu64 " %" SCNu64 " %" SCNu64
        " %" SCNu64 " %" SCNx64 " %" SCNx64 " %" SCNx64 "%n",
        tag, &hash, &cycles, &instructions, &switches, &fills, &spills,
        &ipc_bits, &hit_bits, &miss_bits, &consumed);
    if (n != 10 || std::string(tag) != kLineTag) continue;

    sim::RunResult r;
    r.cycles = cycles;
    r.instructions = instructions;
    r.context_switches = switches;
    r.rf_fills = fills;
    r.rf_spills = spills;
    r.ipc = bits_f64(ipc_bits);
    r.rf_hit_rate = bits_f64(hit_bits);
    r.avg_dcache_miss_latency = bits_f64(miss_bits);
    // Cycle-accounting stack, one hex-bit-pattern double per bucket.
    const char* rest = body.c_str() + consumed;
    bool stack_ok = true;
    for (double& v : r.cpi_stack) {
      u64 bits = 0;
      int used = 0;
      if (std::sscanf(rest, " %" SCNx64 "%n", &bits, &used) != 1) {
        stack_ok = false;
        break;
      }
      v = bits_f64(bits);
      rest += used;
    }
    if (!stack_ok) continue;
    r.check_ok = true;  // only passing runs are journalled
    entries_[hash] = r;
  }
  return entries_.size();
}

bool SweepJournal::lookup(u64 hash, sim::RunResult* out) const {
  const auto it = entries_.find(hash);
  if (it == entries_.end()) return false;
  if (out != nullptr) *out = it->second;
  return true;
}

void SweepJournal::record(u64 hash, const sim::RunResult& result) {
  char body[512];
  int len = std::snprintf(
      body, sizeof body,
      "%s %016" PRIx64 " %" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64
      " %" PRIu64 " %016" PRIx64 " %016" PRIx64 " %016" PRIx64,
      kLineTag, hash, result.cycles, result.instructions,
      result.context_switches, result.rf_fills, result.rf_spills,
      f64_bits(result.ipc), f64_bits(result.rf_hit_rate),
      f64_bits(result.avg_dcache_miss_latency));
  for (const double v : result.cpi_stack) {
    len += std::snprintf(body + len, sizeof body - static_cast<size_t>(len),
                         " %016" PRIx64, f64_bits(v));
  }
  std::string line = framed_line(body);

  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ < 0) {
    fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC,
                 0644);
    if (fd_ < 0) {
      throw CkptError("cannot open sweep journal " + path_ +
                      " for appending");
    }
  }
  // The header goes first in a fresh (still-empty) file. Two processes
  // racing on creation can both write one under their own lock; the
  // duplicate header is skipped on load like any non-entry line.
  ::flock(fd_, LOCK_EX);
  struct stat st {};
  if (::fstat(fd_, &st) == 0 && st.st_size == 0) {
    line = framed_line(std::string(kHeaderTag) + " " + build::provenance()) +
           line;
  }
  // One write(2) for the whole line: with O_APPEND the kernel appends
  // it atomically at the current end, so concurrent writers interleave
  // whole lines, never bytes (the flock adds belt-and-braces around
  // the header race and short writes).
  const char* p = line.data();
  std::size_t remaining = line.size();
  bool ok = true;
  while (remaining > 0) {
    const ssize_t n = ::write(fd_, p, remaining);
    if (n <= 0) {
      ok = false;
      break;
    }
    p += n;
    remaining -= static_cast<std::size_t>(n);
  }
  ::flock(fd_, LOCK_UN);
  if (!ok) {
    throw CkptError("short write appending to sweep journal " + path_);
  }
  entries_[hash] = result;
  entries_[hash].check_ok = true;
}

}  // namespace virec::ckpt
