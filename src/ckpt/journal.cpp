#include "ckpt/journal.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "ckpt/serialize.hpp"

namespace virec::ckpt {

namespace {

// VJ2 appended the 13 cycle-accounting buckets. VJ1 lines fail the tag
// check and are silently re-run — safe, just slower on first resume.
constexpr const char* kLineTag = "VJ2";

u64 fnv1a(u64 h, const void* data, std::size_t size) {
  const u8* p = static_cast<const u8*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

u64 fnv1a_u64(u64 h, u64 v) { return fnv1a(h, &v, sizeof v); }

u64 fnv1a_f64(u64 h, double v) {
  u64 bits;
  std::memcpy(&bits, &v, sizeof bits);
  return fnv1a_u64(h, bits);
}

u64 f64_bits(double v) {
  u64 bits;
  std::memcpy(&bits, &v, sizeof bits);
  return bits;
}

double bits_f64(u64 bits) {
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

}  // namespace

u64 spec_hash(const sim::RunSpec& spec) {
  u64 h = 0xcbf29ce484222325ull;
  h = fnv1a(h, spec.workload.data(), spec.workload.size());
  h = fnv1a_u64(h, static_cast<u64>(spec.scheme));
  h = fnv1a_u64(h, static_cast<u64>(spec.policy));
  h = fnv1a_u64(h, spec.num_cores);
  h = fnv1a_u64(h, spec.threads_per_core);
  h = fnv1a_f64(h, spec.context_fraction);
  h = fnv1a_u64(h, spec.params.iters_per_thread);
  h = fnv1a_u64(h, spec.params.elements);
  h = fnv1a_u64(h, spec.params.stride);
  h = fnv1a_u64(h, spec.params.locality_window);
  h = fnv1a_u64(h, spec.params.extra_compute);
  h = fnv1a_u64(h, spec.params.max_regs);
  h = fnv1a_u64(h, spec.params.seed);
  h = fnv1a_u64(h, spec.dcache_bytes);
  h = fnv1a_u64(h, spec.dcache_latency);
  h = fnv1a_u64(h, spec.phys_regs);
  h = fnv1a_u64(h, spec.max_cycles);
  h = fnv1a_u64(h, (spec.group_spill ? 1u : 0u) |
                       (spec.switch_prefetch ? 2u : 0u) |
                       (spec.functional_ff ? 4u : 0u));
  // Tiered sampling parameters: a sampled point must never reuse a
  // journalled full-detail result (or vice versa).
  h = fnv1a_u64(h, spec.sample_windows);
  h = fnv1a_u64(h, spec.window_insts);
  h = fnv1a_u64(h, spec.warmup_insts);
  return h;
}

std::size_t SweepJournal::load() {
  entries_.clear();
  std::ifstream in(path_);
  if (!in) return 0;  // no journal yet: nothing completed
  std::string line;
  while (std::getline(in, line)) {
    // A torn trailing line (killed mid-append) has no terminating
    // newline; getline still yields it, but its CRC will not match.
    const std::size_t crc_at = line.rfind(' ');
    if (crc_at == std::string::npos) continue;
    const std::string body = line.substr(0, crc_at);
    u32 expected_crc = 0;
    if (std::sscanf(line.c_str() + crc_at + 1, "%" SCNx32, &expected_crc) !=
        1) {
      continue;
    }
    if (crc32(body.data(), body.size()) != expected_crc) continue;

    char tag[8] = {0};
    u64 hash = 0, cycles = 0, instructions = 0, switches = 0, fills = 0,
        spills = 0, ipc_bits = 0, hit_bits = 0, miss_bits = 0;
    int consumed = 0;
    const int n = std::sscanf(
        body.c_str(),
        "%7s %" SCNx64 " %" SCNu64 " %" SCNu64 " %" SCNu64 " %" SCNu64
        " %" SCNu64 " %" SCNx64 " %" SCNx64 " %" SCNx64 "%n",
        tag, &hash, &cycles, &instructions, &switches, &fills, &spills,
        &ipc_bits, &hit_bits, &miss_bits, &consumed);
    if (n != 10 || std::string(tag) != kLineTag) continue;

    sim::RunResult r;
    r.cycles = cycles;
    r.instructions = instructions;
    r.context_switches = switches;
    r.rf_fills = fills;
    r.rf_spills = spills;
    r.ipc = bits_f64(ipc_bits);
    r.rf_hit_rate = bits_f64(hit_bits);
    r.avg_dcache_miss_latency = bits_f64(miss_bits);
    // Cycle-accounting stack, one hex-bit-pattern double per bucket.
    const char* rest = body.c_str() + consumed;
    bool stack_ok = true;
    for (double& v : r.cpi_stack) {
      u64 bits = 0;
      int used = 0;
      if (std::sscanf(rest, " %" SCNx64 "%n", &bits, &used) != 1) {
        stack_ok = false;
        break;
      }
      v = bits_f64(bits);
      rest += used;
    }
    if (!stack_ok) continue;
    r.check_ok = true;  // only passing runs are journalled
    entries_[hash] = r;
  }
  return entries_.size();
}

bool SweepJournal::lookup(u64 hash, sim::RunResult* out) const {
  const auto it = entries_.find(hash);
  if (it == entries_.end()) return false;
  if (out != nullptr) *out = it->second;
  return true;
}

void SweepJournal::record(u64 hash, const sim::RunResult& result) {
  char body[512];
  int len = std::snprintf(
      body, sizeof body,
      "%s %016" PRIx64 " %" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64
      " %" PRIu64 " %016" PRIx64 " %016" PRIx64 " %016" PRIx64,
      kLineTag, hash, result.cycles, result.instructions,
      result.context_switches, result.rf_fills, result.rf_spills,
      f64_bits(result.ipc), f64_bits(result.rf_hit_rate),
      f64_bits(result.avg_dcache_miss_latency));
  for (const double v : result.cpi_stack) {
    len += std::snprintf(body + len, sizeof body - static_cast<size_t>(len),
                         " %016" PRIx64, f64_bits(v));
  }
  const u32 crc = crc32(body, std::strlen(body));

  std::lock_guard<std::mutex> lock(mutex_);
  if (!out_.is_open()) {
    out_.open(path_, std::ios::app);
    if (!out_) {
      throw CkptError("cannot open sweep journal " + path_ +
                      " for appending");
    }
  }
  char crc_hex[16];
  std::snprintf(crc_hex, sizeof crc_hex, " %08x", crc);
  out_ << body << crc_hex << '\n';
  out_.flush();
  entries_[hash] = result;
  entries_[hash].check_ok = true;
}

}  // namespace virec::ckpt
