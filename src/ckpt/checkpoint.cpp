#include "ckpt/checkpoint.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace virec::ckpt {

Encoder& CheckpointWriter::section(std::string name) {
  sections_.push_back(std::make_unique<Section>());
  sections_.back()->name = std::move(name);
  return sections_.back()->payload;
}

std::vector<u8> CheckpointWriter::bytes() const {
  Encoder out;
  out.put_u32(kMagic);
  out.put_u32(kFormatVersion);
  out.put_u64(config_hash_);
  out.put_u32(static_cast<u32>(sections_.size()));
  for (const auto& s : sections_) {
    out.put_str(s->name);
    const std::vector<u8>& payload = s->payload.bytes();
    out.put_u64(payload.size());
    out.put_u32(crc32(payload.data(), payload.size()));
    out.raw(payload.data(), payload.size());
  }
  return out.bytes();
}

void CheckpointWriter::write_file(const std::string& path) const {
  namespace fs = std::filesystem;
  const std::vector<u8> data = bytes();
  const fs::path target(path);
  std::error_code ec;
  if (target.has_parent_path()) {
    fs::create_directories(target.parent_path(), ec);  // best effort
  }
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw CkptError("cannot open " + tmp + " for writing");
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
    out.flush();
    if (!out) throw CkptError("write failed for " + tmp);
  }
  fs::rename(tmp, target, ec);
  if (ec) {
    std::remove(tmp.c_str());
    throw CkptError("cannot rename " + tmp + " to " + path + ": " +
                    ec.message());
  }
}

CheckpointReader::CheckpointReader(const std::string& path,
                                   u64 expected_config_hash)
    : path_(path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw CkptError("cannot open checkpoint " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  file_.resize(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(file_.data()), size);
  if (!in) throw CkptError("cannot read checkpoint " + path);

  Decoder header(file_.data(), file_.size(), "header of " + path);
  const u32 magic = header.get_u32();
  if (magic != kMagic) {
    throw CkptError(path + ": not a checkpoint file (bad magic)");
  }
  version_ = header.get_u32();
  if (version_ != kFormatVersion) {
    throw CkptError(path + ": unsupported format version " +
                    std::to_string(version_) + " (this build reads " +
                    std::to_string(kFormatVersion) + ")");
  }
  config_hash_ = header.get_u64();
  if (config_hash_ != expected_config_hash) {
    throw CkptError(path +
                    ": config hash mismatch — snapshot was taken with a "
                    "different system configuration or workload");
  }
  const u32 count = header.get_u32();
  for (u32 i = 0; i < count; ++i) {
    Section s;
    s.name = header.get_str();
    const u64 payload_len = header.get_u64();
    const u32 expected_crc = header.get_u32();
    if (header.remaining() < payload_len) {
      throw CkptError(path + ": truncated (section '" + s.name +
                      "' claims " + std::to_string(payload_len) +
                      " bytes, only " + std::to_string(header.remaining()) +
                      " remain)");
    }
    s.offset = file_.size() - header.remaining();
    s.size = static_cast<std::size_t>(payload_len);
    const u32 actual_crc = crc32(file_.data() + s.offset, s.size);
    if (actual_crc != expected_crc) {
      throw CkptError(path + ": CRC mismatch in section '" + s.name +
                      "' (file corrupted)");
    }
    header.skip(s.size);
    sections_.push_back(std::move(s));
  }
  if (!header.done()) {
    throw CkptError(path + ": trailing bytes after last section");
  }
}

Decoder CheckpointReader::section(const std::string& name) {
  if (next_section_ >= sections_.size()) {
    throw CkptError(path_ + ": missing section '" + name + "'");
  }
  const Section& s = sections_[next_section_++];
  if (s.name != name) {
    throw CkptError(path_ + ": expected section '" + name + "', found '" +
                    s.name + "'");
  }
  return Decoder(file_.data() + s.offset, s.size, "section '" + name + "'");
}

}  // namespace virec::ckpt
