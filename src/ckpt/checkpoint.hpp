// Versioned, crash-safe snapshot files (docs/checkpointing.md).
//
// Layout (all integers little-endian):
//
//   magic          u32   'VCKP' (0x504b4356 on disk: "VCKP")
//   format_version u32   kFormatVersion
//   config_hash    u64   hash of the producing SystemConfig + workload
//   section_count  u32
//   per section:
//     name_len     u32   then name bytes
//     payload_len  u64
//     crc32        u32   CRC-32 of the payload bytes
//     payload
//
// Writes are atomic: the file is assembled beside the target as
// "<path>.tmp" and renamed into place, so a crash mid-write never
// leaves a half-written snapshot under the final name. Restores verify
// the magic, the format version, the config hash and every section's
// CRC before any component state is touched.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "ckpt/serialize.hpp"

namespace virec::ckpt {

/// Bumped whenever the snapshot layout changes incompatibly. Restoring
/// a file with a different version fails cleanly.
inline constexpr u32 kFormatVersion = 2;  // v2: cycle-accounting state
inline constexpr u32 kMagic = 0x504b4356u;  // "VCKP"

/// Assembles a snapshot in memory, then writes it atomically.
class CheckpointWriter {
 public:
  explicit CheckpointWriter(u64 config_hash) : config_hash_(config_hash) {}

  /// Start a new section; returns the encoder to fill its payload.
  /// Section order is part of the format: readers consume sections in
  /// the order they were written.
  Encoder& section(std::string name);

  /// Serialise everything to @p path via temp file + rename. Creates
  /// missing parent directories. Throws CkptError on I/O failure.
  void write_file(const std::string& path) const;

  /// The assembled snapshot bytes (exposed for tests).
  std::vector<u8> bytes() const;

 private:
  struct Section {
    std::string name;
    Encoder payload;
  };

  u64 config_hash_;
  // deque-like stability not needed: sections are appended and the
  // encoder reference is only used until the next section() call.
  std::vector<std::unique_ptr<Section>> sections_;
};

/// Loads a snapshot, validates header + per-section CRCs up front, and
/// hands out section decoders in file order.
class CheckpointReader {
 public:
  /// Reads and validates @p path. @p expected_config_hash must match
  /// the file's config hash ("refuse to restore into a mismatched
  /// SystemConfig").
  CheckpointReader(const std::string& path, u64 expected_config_hash);

  /// Decoder over the next section, which must be named @p name.
  Decoder section(const std::string& name);

  u32 format_version() const { return version_; }
  u64 config_hash() const { return config_hash_; }
  std::size_t section_count() const { return sections_.size(); }

 private:
  struct Section {
    std::string name;
    std::size_t offset = 0;  // into file_
    std::size_t size = 0;
  };

  std::string path_;
  std::vector<u8> file_;
  u32 version_ = 0;
  u64 config_hash_ = 0;
  std::vector<Section> sections_;
  std::size_t next_section_ = 0;
};

}  // namespace virec::ckpt
