// Resumable-sweep journal: an append-only text file recording one line
// per completed sweep point, keyed by ckpt::spec_hash (the canonical
// identity hash from ckpt/spec_codec.hpp). A killed sweep restarted
// with the same journal skips every point whose result is already
// recorded, and the reassembled CSV/JSON output is byte-identical to
// an uninterrupted run (doubles are stored by bit pattern, never
// reparsed).
//
// Crash safety: every line is self-contained and carries its own
// CRC-32; loading ignores a torn trailing line (the process died
// mid-append) and rejects corrupted lines, so those points simply
// re-run.
//
// Concurrent writers: record() assembles the whole line in memory and
// appends it with a single O_APPEND write(2) under an exclusive
// flock(2), so any number of processes (or SweepJournal instances) may
// append to one journal file concurrently — lines never tear or
// interleave. Readers are unaffected: load() tolerates whatever a
// concurrent writer has flushed so far. Enforced by the
// ConcurrentWritersInterleaveSafely test in tests/test_sweep.cpp.
//
// Provenance: the first line of a fresh journal is a "VJH" header
// carrying the producing build's provenance string (git describe,
// compiler, flags — src/common/version.hpp.in). Loaders skip it like
// any foreign-tag line, so old builds read new journals; load()
// exposes it via provenance().
#pragma once

#include <cstddef>
#include <mutex>
#include <string>
#include <unordered_map>

#include "ckpt/spec_codec.hpp"
#include "sim/runner.hpp"

namespace virec::ckpt {

class SweepJournal {
 public:
  explicit SweepJournal(std::string path) : path_(std::move(path)) {}
  ~SweepJournal();

  /// Load existing entries from the journal file (a missing file is an
  /// empty journal). Malformed, CRC-corrupt and torn trailing lines
  /// are skipped. Returns the number of entries loaded.
  std::size_t load();

  /// Result for @p hash, if journalled. Restored results carry
  /// check_ok = true: only runs that passed their workload check are
  /// ever recorded.
  bool lookup(u64 hash, sim::RunResult* out) const;

  /// Append one completed point and flush. Thread-safe within this
  /// instance (sweep workers record results as they finish) and safe
  /// across concurrent processes appending to the same file (see file
  /// comment).
  void record(u64 hash, const sim::RunResult& result);

  std::size_t size() const { return entries_.size(); }
  const std::string& path() const { return path_; }

  /// Provenance string from the journal's header line, if load() found
  /// one (empty otherwise — e.g. a journal written by a pre-header
  /// build).
  const std::string& provenance() const { return provenance_; }

 private:
  std::string path_;
  std::string provenance_;
  std::unordered_map<u64, sim::RunResult> entries_;
  int fd_ = -1;  // append-mode descriptor, opened on first record()
  std::mutex mutex_;
};

}  // namespace virec::ckpt
