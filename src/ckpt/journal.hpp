// Resumable-sweep journal: an append-only text file recording one line
// per completed sweep point, keyed by a hash of the full RunSpec. A
// killed sweep restarted with the same journal skips every point whose
// result is already recorded, and the reassembled CSV/JSON output is
// byte-identical to an uninterrupted run (doubles are stored by bit
// pattern, never reparsed).
//
// Crash safety: every line is self-contained and carries its own
// CRC-32; loading ignores a torn trailing line (the process died
// mid-append) and rejects corrupted lines, so those points simply
// re-run.
#pragma once

#include <cstddef>
#include <fstream>
#include <mutex>
#include <string>
#include <unordered_map>

#include "sim/runner.hpp"

namespace virec::ckpt {

/// Deterministic hash over every field of @p spec (workload, scheme,
/// policy, grid axes, workload params, overrides). Two specs collide
/// only if they describe the same experiment point.
u64 spec_hash(const sim::RunSpec& spec);

class SweepJournal {
 public:
  explicit SweepJournal(std::string path) : path_(std::move(path)) {}

  /// Load existing entries from the journal file (a missing file is an
  /// empty journal). Malformed, CRC-corrupt and torn trailing lines
  /// are skipped. Returns the number of entries loaded.
  std::size_t load();

  /// Result for @p hash, if journalled. Restored results carry
  /// check_ok = true: only runs that passed their workload check are
  /// ever recorded.
  bool lookup(u64 hash, sim::RunResult* out) const;

  /// Append one completed point and flush. Thread-safe: sweep workers
  /// record results as they finish.
  void record(u64 hash, const sim::RunResult& result);

  std::size_t size() const { return entries_.size(); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::unordered_map<u64, sim::RunResult> entries_;
  std::ofstream out_;
  std::mutex mutex_;
};

}  // namespace virec::ckpt
