#include "ckpt/spec_codec.hpp"

namespace virec::ckpt {

u64 fnv1a(u64 h, const void* data, std::size_t size) {
  const u8* p = static_cast<const u8*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

void encode_spec_identity(Encoder& enc, const sim::RunSpec& spec) {
  enc.put_str(spec.workload);
  enc.put_u32(static_cast<u32>(spec.scheme));
  enc.put_u32(static_cast<u32>(spec.policy));
  enc.put_u32(spec.num_cores);
  enc.put_u32(spec.threads_per_core);
  enc.put_f64(spec.context_fraction);
  enc.put_u64(spec.params.iters_per_thread);
  enc.put_u64(spec.params.elements);
  enc.put_u64(spec.params.stride);
  enc.put_u64(spec.params.locality_window);
  enc.put_u32(spec.params.extra_compute);
  enc.put_u32(spec.params.max_regs);
  enc.put_u64(spec.params.seed);
  enc.put_u32(spec.dcache_bytes);
  enc.put_u32(spec.dcache_latency);
  enc.put_u32(spec.phys_regs);
  enc.put_u64(spec.max_cycles);
  enc.put_bool(spec.group_spill);
  enc.put_bool(spec.switch_prefetch);
  // Tiered sampling changes the reported result (estimated vs measured
  // cycles), so the sampling plan is part of the identity.
  enc.put_bool(spec.functional_ff);
  enc.put_u32(spec.sample_windows);
  enc.put_u64(spec.window_insts);
  enc.put_u64(spec.warmup_insts);
  // v2: adaptive warm-up and set-sampled warming change the sampled
  // estimate, so they are identity. stream_reuse / stream_dir are NOT:
  // reuse is bit-identical by construction (tests/test_stream_reuse).
  enc.put_u32(spec.adaptive_warmup);
  enc.put_u32(spec.warm_set_sample);
}

namespace {

sim::RunSpec decode_spec_identity(Decoder& dec) {
  sim::RunSpec spec;
  spec.workload = dec.get_str();
  spec.scheme = static_cast<sim::Scheme>(dec.get_u32());
  spec.policy = static_cast<core::PolicyKind>(dec.get_u32());
  spec.num_cores = dec.get_u32();
  spec.threads_per_core = dec.get_u32();
  spec.context_fraction = dec.get_f64();
  spec.params.iters_per_thread = dec.get_u64();
  spec.params.elements = dec.get_u64();
  spec.params.stride = dec.get_u64();
  spec.params.locality_window = dec.get_u64();
  spec.params.extra_compute = dec.get_u32();
  spec.params.max_regs = dec.get_u32();
  spec.params.seed = dec.get_u64();
  spec.dcache_bytes = dec.get_u32();
  spec.dcache_latency = dec.get_u32();
  spec.phys_regs = dec.get_u32();
  spec.max_cycles = dec.get_u64();
  spec.group_spill = dec.get_bool();
  spec.switch_prefetch = dec.get_bool();
  spec.functional_ff = dec.get_bool();
  spec.sample_windows = dec.get_u32();
  spec.window_insts = dec.get_u64();
  spec.warmup_insts = dec.get_u64();
  spec.adaptive_warmup = dec.get_u32();
  spec.warm_set_sample = dec.get_u32();
  return spec;
}

}  // namespace

void encode_spec(Encoder& enc, const sim::RunSpec& spec) {
  enc.put_u32(kSpecCodecVersion);
  encode_spec_identity(enc, spec);
  enc.put_bool(spec.check);
  enc.put_bool(spec.no_skip);
}

sim::RunSpec decode_spec(Decoder& dec) {
  const u32 version = dec.get_u32();
  if (version != kSpecCodecVersion) {
    throw CkptError("spec codec version mismatch: payload v" +
                    std::to_string(version) + ", this build speaks v" +
                    std::to_string(kSpecCodecVersion));
  }
  sim::RunSpec spec = decode_spec_identity(dec);
  spec.check = dec.get_bool();
  spec.no_skip = dec.get_bool();
  return spec;
}

void encode_result(Encoder& enc, const sim::RunResult& result) {
  enc.put_u64(result.cycles);
  enc.put_u64(result.instructions);
  enc.put_f64(result.ipc);
  enc.put_bool(result.check_ok);
  enc.put_str(result.check_msg);
  enc.put_f64(result.rf_hit_rate);
  enc.put_u64(result.context_switches);
  enc.put_u64(result.rf_fills);
  enc.put_u64(result.rf_spills);
  enc.put_f64(result.avg_dcache_miss_latency);
  enc.put_u32(static_cast<u32>(result.cpi_stack.size()));
  for (const double v : result.cpi_stack) enc.put_f64(v);
}

sim::RunResult decode_result(Decoder& dec) {
  sim::RunResult result;
  result.cycles = dec.get_u64();
  result.instructions = dec.get_u64();
  result.ipc = dec.get_f64();
  result.check_ok = dec.get_bool();
  result.check_msg = dec.get_str();
  result.rf_hit_rate = dec.get_f64();
  result.context_switches = dec.get_u64();
  result.rf_fills = dec.get_u64();
  result.rf_spills = dec.get_u64();
  result.avg_dcache_miss_latency = dec.get_f64();
  const u32 buckets = dec.get_u32();
  if (buckets != result.cpi_stack.size()) {
    throw CkptError("result payload carries " + std::to_string(buckets) +
                    " cycle buckets, this build has " +
                    std::to_string(result.cpi_stack.size()));
  }
  for (double& v : result.cpi_stack) v = dec.get_f64();
  return result;
}

u64 spec_hash(const sim::RunSpec& spec) {
  Encoder enc;
  encode_spec_identity(enc, spec);
  return fnv1a(kFnvOffsetBasis, enc.bytes().data(), enc.size());
}

u64 functional_stream_hash(const sim::RunSpec& spec) {
  if (spec.num_cores != 1) return 0;
  Encoder enc;
  enc.put_u32(kFuncStreamVersion);
  enc.put_str(spec.workload);
  enc.put_u64(spec.params.iters_per_thread);
  enc.put_u64(spec.params.elements);
  enc.put_u64(spec.params.stride);
  enc.put_u64(spec.params.locality_window);
  enc.put_u32(spec.params.extra_compute);
  enc.put_u32(spec.params.max_regs);
  enc.put_u64(spec.params.seed);
  enc.put_u32(spec.num_cores);
  enc.put_u32(spec.threads_per_core);
  // The dcache byte size shapes the schedule model's set geometry
  // (switch-on-miss decisions), so it splits streams; latency, scheme,
  // policy and phys_regs do not reach the functional tier.
  enc.put_u32(spec.dcache_bytes);
  const u64 h = fnv1a(kFnvOffsetBasis, enc.bytes().data(), enc.size());
  return h == 0 ? 1 : h;
}

}  // namespace virec::ckpt
