#include "analysis/policy_sim.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "cpu/ooo_core.hpp"
#include "isa/semantics.hpp"

namespace virec::analysis {

namespace {

/// Per-thread flat register access stream (functional execution).
std::vector<u8> thread_stream(const workloads::Workload& workload,
                              const workloads::WorkloadParams& params,
                              u32 tid, u32 total_threads,
                              u64 max_instructions) {
  const kasm::Program program = workload.program(params);
  mem::SparseMemory memory;
  workload.init_memory(memory, params, total_threads);
  const workloads::RegContext init =
      workload.thread_regs(params, tid, total_threads);
  cpu::ArrayRegFile rf;
  for (u32 r = 0; r < isa::kNumAllocatableRegs; ++r) {
    rf.write_reg(0, static_cast<isa::RegId>(r), init[r]);
  }
  std::vector<u8> stream;
  u64 pc = 0, executed = 0;
  u8 nzcv = 0;
  while (true) {
    if (++executed > max_instructions) {
      throw std::runtime_error("thread_stream: instruction cap exceeded");
    }
    const isa::Inst& inst = program.at(pc);
    const isa::RegList regs = isa::all_regs(inst);
    for (u32 i = 0; i < regs.count; ++i) stream.push_back(regs.regs[i]);
    const isa::ExecResult res = isa::execute(inst, pc, 0, rf, memory, nzcv);
    if (res.halted) break;
    pc = res.next_pc;
  }
  return stream;
}

}  // namespace

std::vector<TraceAccess> interleaved_trace(
    const workloads::Workload& workload,
    const workloads::WorkloadParams& params, u32 threads,
    u32 accesses_per_episode, u64 max_instructions) {
  if (threads == 0 || accesses_per_episode == 0) {
    throw std::invalid_argument("interleaved_trace: bad arguments");
  }
  std::vector<std::vector<u8>> streams;
  for (u32 t = 0; t < threads; ++t) {
    streams.push_back(
        thread_stream(workload, params, t, threads, max_instructions));
  }
  std::vector<TraceAccess> trace;
  std::vector<std::size_t> cursor(threads, 0);
  bool progress = true;
  while (progress) {
    progress = false;
    for (u8 t = 0; t < threads; ++t) {
      for (u32 k = 0; k < accesses_per_episode; ++k) {
        if (cursor[t] >= streams[t].size()) break;
        progress = true;
        trace.push_back(TraceAccess{t, streams[t][cursor[t]++]});
      }
    }
  }
  return trace;
}

double belady_hit_rate(const std::vector<TraceAccess>& trace,
                       u32 rf_entries) {
  if (trace.empty()) return 1.0;
  constexpr u64 kNever = std::numeric_limits<u64>::max();

  // next_use[i] = index of the next access to the same key after i.
  std::vector<u64> next_use(trace.size(), kNever);
  std::unordered_map<u32, u64> last_seen;
  for (u64 i = trace.size(); i-- > 0;) {
    const u32 key = trace[i].key();
    auto it = last_seen.find(key);
    next_use[i] = it == last_seen.end() ? kNever : it->second;
    last_seen[key] = i;
  }

  // Resident set: key -> next use index; victim = max next use.
  std::unordered_map<u32, u64> resident;
  u64 hits = 0;
  for (u64 i = 0; i < trace.size(); ++i) {
    const u32 key = trace[i].key();
    auto it = resident.find(key);
    if (it != resident.end()) {
      ++hits;
      it->second = next_use[i];
      continue;
    }
    if (resident.size() >= rf_entries) {
      auto victim = resident.begin();
      for (auto r = resident.begin(); r != resident.end(); ++r) {
        if (r->second > victim->second) victim = r;
      }
      resident.erase(victim);
    }
    resident.emplace(key, next_use[i]);
  }
  return static_cast<double>(hits) / static_cast<double>(trace.size());
}

OfflineHitRates offline_hit_rates(const std::vector<TraceAccess>& trace,
                                  u32 rf_entries, u32 threads,
                                  u32 accesses_per_episode) {
  if (rf_entries == 0) {
    throw std::invalid_argument("offline_hit_rates: zero-entry RF");
  }
  OfflineHitRates out;
  out.accesses = trace.size();
  if (trace.empty()) {
    out.opt = out.lru = out.fifo = out.mrt_lru = 1.0;
    return out;
  }
  out.opt = belady_hit_rate(trace, rf_entries);

  struct Entry {
    u32 key;
    u64 last_use;
    u64 inserted;
    u8 tid;
  };

  // Thread recency rank: larger == suspended longer ago == runs sooner
  // again is FALSE — under round-robin the thread suspended most
  // recently runs furthest in the future, so it is victimised first.
  auto run_policy = [&](int policy) {
    std::vector<Entry> entries;
    std::unordered_map<u32, std::size_t> index;
    std::vector<u64> suspended_at(threads, 0);  // episode counter
    u64 episode = 1;
    u32 in_episode = 0;
    u8 running = trace[0].tid;
    u64 hits = 0, tick = 0;

    for (const TraceAccess& access : trace) {
      if (access.tid != running) {
        suspended_at[running] = episode++;
        running = access.tid;
        in_episode = 0;
      }
      ++in_episode;
      (void)in_episode;
      ++tick;
      const u32 key = access.key();
      auto it = index.find(key);
      if (it != index.end()) {
        ++hits;
        entries[it->second].last_use = tick;
        continue;
      }
      if (entries.size() < rf_entries) {
        index[key] = entries.size();
        entries.push_back(Entry{key, tick, tick, access.tid});
        continue;
      }
      // Pick a victim.
      std::size_t victim = 0;
      for (std::size_t e = 1; e < entries.size(); ++e) {
        const Entry& a = entries[e];
        const Entry& b = entries[victim];
        bool better = false;
        switch (policy) {
          case 0:  // LRU
            better = a.last_use < b.last_use;
            break;
          case 1:  // FIFO
            better = a.inserted < b.inserted;
            break;
          case 2: {  // MRT-LRU
            const u64 sa = a.tid == running ? 0 : suspended_at[a.tid];
            const u64 sb = b.tid == running ? 0 : suspended_at[b.tid];
            better = sa != sb ? sa > sb : a.last_use < b.last_use;
            break;
          }
        }
        if (better) victim = e;
      }
      index.erase(entries[victim].key);
      entries[victim] = Entry{key, tick, tick, access.tid};
      index[key] = victim;
    }
    return static_cast<double>(hits) / static_cast<double>(trace.size());
  };

  out.lru = run_policy(0);
  out.fifo = run_policy(1);
  out.mrt_lru = run_policy(2);
  (void)accesses_per_episode;
  return out;
}

}  // namespace virec::analysis
