// Offline register-cache policy simulation on interleaved access
// traces.
//
// Section 4 motivates LRC as "aimed at evicting the registers used
// furthest in the future, similar to Belady's min". This module
// quantifies that: it builds the same round-robin-interleaved
// (thread, register) access trace the ViReC RF sees and replays it
// through a fully-associative cache of a given size under
//   * OPT      — Belady's clairvoyant optimum (upper bound),
//   * LRU      — perfect recency (thrashes under round-robin),
//   * FIFO,
//   * MRT-LRU  — thread recency first, then LRU within a thread,
// so the online LRC hit rate from the timing simulator can be placed
// between the implementable policies and the theoretical bound.
#pragma once

#include <vector>

#include "workloads/workload.hpp"

namespace virec::analysis {

/// One register access in the interleaved trace.
struct TraceAccess {
  u8 tid = 0;
  isa::RegId arch = 0;
  u32 key() const { return static_cast<u32>(tid) * 64 + arch; }
};

/// Round-robin interleaving of per-thread register access streams with
/// a fixed number of accesses per scheduling episode (the offline
/// stand-in for CGMT context switching).
std::vector<TraceAccess> interleaved_trace(
    const workloads::Workload& workload,
    const workloads::WorkloadParams& params, u32 threads,
    u32 accesses_per_episode, u64 max_instructions = 50'000'000);

struct OfflineHitRates {
  double opt = 0.0;
  double lru = 0.0;
  double fifo = 0.0;
  double mrt_lru = 0.0;
  u64 accesses = 0;
};

/// Replay @p trace through an @p rf_entries-entry fully-associative
/// register cache under each offline policy. @p threads and
/// @p accesses_per_episode must match the trace so MRT-LRU can track
/// the round-robin schedule.
OfflineHitRates offline_hit_rates(const std::vector<TraceAccess>& trace,
                                  u32 rf_entries, u32 threads,
                                  u32 accesses_per_episode);

/// Belady's optimal hit rate alone (convenience).
double belady_hit_rate(const std::vector<TraceAccess>& trace, u32 rf_entries);

}  // namespace virec::analysis
