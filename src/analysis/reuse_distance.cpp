#include "analysis/reuse_distance.hpp"

#include <algorithm>
#include <list>
#include <stdexcept>

#include "cpu/ooo_core.hpp"
#include "isa/semantics.hpp"

namespace virec::analysis {

double ReuseHistogram::mean_distance() const {
  u64 n = 0;
  double sum = 0.0;
  for (u32 d = 0; d <= kMaxDistance; ++d) {
    n += counts[d];
    sum += static_cast<double>(counts[d]) * d;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

double ReuseHistogram::cdf(u32 d) const {
  u64 n = 0, below = 0;
  for (u32 i = 0; i <= kMaxDistance; ++i) {
    n += counts[i];
    if (i <= d) below += counts[i];
  }
  return n == 0 ? 0.0 : static_cast<double>(below) / static_cast<double>(n);
}

namespace {

/// LRU stack over (tid, reg) keys.
class LruStack {
 public:
  /// Returns the stack distance of @p key, or -1 on first touch, then
  /// moves the key to the top.
  int touch(u32 key) {
    int depth = 0;
    for (auto it = stack_.begin(); it != stack_.end(); ++it, ++depth) {
      if (*it == key) {
        stack_.erase(it);
        stack_.push_front(key);
        return depth;
      }
    }
    stack_.push_front(key);
    return -1;
  }

 private:
  std::list<u32> stack_;
};

/// Generate thread @p tid's register access trace (flattened per
/// instruction, program order).
std::vector<u8> access_trace(const workloads::Workload& workload,
                             const workloads::WorkloadParams& params,
                             u32 tid, u32 total_threads,
                             u64 max_instructions) {
  const kasm::Program program = workload.program(params);
  mem::SparseMemory memory;
  workload.init_memory(memory, params, total_threads);
  const workloads::RegContext init =
      workload.thread_regs(params, tid, total_threads);
  cpu::ArrayRegFile rf;
  for (u32 r = 0; r < isa::kNumAllocatableRegs; ++r) {
    rf.write_reg(0, static_cast<isa::RegId>(r), init[r]);
  }
  std::vector<u8> trace;
  u64 pc = 0, executed = 0;
  u8 nzcv = 0;
  while (true) {
    if (++executed > max_instructions) {
      throw std::runtime_error("access_trace: instruction cap exceeded");
    }
    const isa::Inst& inst = program.at(pc);
    const isa::RegList regs = isa::all_regs(inst);
    for (u32 i = 0; i < regs.count; ++i) trace.push_back(regs.regs[i]);
    const isa::ExecResult res = isa::execute(inst, pc, 0, rf, memory, nzcv);
    if (res.halted) break;
    pc = res.next_pc;
  }
  return trace;
}

void accumulate(ReuseHistogram& hist, LruStack& stack, u32 key) {
  const int d = stack.touch(key);
  ++hist.total_accesses;
  if (d < 0) {
    ++hist.first_touches;
  } else {
    ++hist.counts[std::min<u32>(static_cast<u32>(d),
                                ReuseHistogram::kMaxDistance)];
  }
}

}  // namespace

ReuseHistogram register_reuse(const workloads::Workload& workload,
                              const workloads::WorkloadParams& params,
                              u64 max_instructions) {
  ReuseHistogram hist;
  LruStack stack;
  for (u8 reg : access_trace(workload, params, 0, 1, max_instructions)) {
    accumulate(hist, stack, reg);
  }
  return hist;
}

ReuseHistogram interleaved_register_reuse(
    const workloads::Workload& workload,
    const workloads::WorkloadParams& params, u32 threads,
    u32 accesses_per_episode, u64 max_instructions) {
  if (threads == 0 || accesses_per_episode == 0) {
    throw std::invalid_argument("interleaved_register_reuse: bad arguments");
  }
  // Collect each thread's trace, then interleave round-robin in
  // fixed-size episodes.
  std::vector<std::vector<u8>> traces;
  for (u32 t = 0; t < threads; ++t) {
    traces.push_back(
        access_trace(workload, params, t, threads, max_instructions));
  }
  ReuseHistogram hist;
  LruStack stack;
  std::vector<std::size_t> cursor(threads, 0);
  bool progress = true;
  while (progress) {
    progress = false;
    for (u32 t = 0; t < threads; ++t) {
      for (u32 k = 0; k < accesses_per_episode; ++k) {
        if (cursor[t] >= traces[t].size()) break;
        progress = true;
        accumulate(hist, stack,
                   t * isa::kNumArchRegs + traces[t][cursor[t]++]);
      }
    }
  }
  return hist;
}

}  // namespace virec::analysis
