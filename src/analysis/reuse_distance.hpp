// Register reuse-distance analysis (Section 4 of the paper): measures,
// for each dynamic register access, how many *distinct* registers were
// touched since the previous access to the same register (LRU stack
// distance). Short distances favour recency policies; the CGMT switch
// pattern creates the bimodal distribution that motivates MRT/LRC.
#pragma once

#include <map>
#include <vector>

#include "kasm/program.hpp"
#include "workloads/workload.hpp"

namespace virec::analysis {

struct ReuseHistogram {
  /// histogram[d] = number of accesses with stack distance d
  /// (capped at kMaxDistance; first-touch accesses are excluded).
  static constexpr u32 kMaxDistance = 64;
  std::array<u64, kMaxDistance + 1> counts{};
  u64 first_touches = 0;
  u64 total_accesses = 0;

  double mean_distance() const;
  /// Fraction of accesses with distance <= d.
  double cdf(u32 d) const;
};

/// Single-threaded register reuse profile of thread 0.
ReuseHistogram register_reuse(const workloads::Workload& workload,
                              const workloads::WorkloadParams& params,
                              u64 max_instructions = 50'000'000);

/// Interleaved profile: simulates round-robin thread interleaving with
/// a fixed number of iterations per scheduling episode, concatenating
/// (tid, reg) streams the way a CGMT processor's register file sees
/// them. This exposes the inter-thread distances of Section 4.1.
ReuseHistogram interleaved_register_reuse(
    const workloads::Workload& workload,
    const workloads::WorkloadParams& params, u32 threads,
    u32 accesses_per_episode, u64 max_instructions = 50'000'000);

}  // namespace virec::analysis
