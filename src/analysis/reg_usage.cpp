#include "analysis/reg_usage.hpp"

#include <stdexcept>
#include <vector>

#include "cpu/ooo_core.hpp"  // ArrayRegFile
#include "isa/semantics.hpp"

namespace virec::analysis {

RegUsageReport profile_registers(const workloads::Workload& workload,
                                 const workloads::WorkloadParams& params,
                                 u64 max_instructions) {
  const kasm::Program program = workload.program(params);
  program.validate();

  mem::SparseMemory memory;
  workload.init_memory(memory, params, /*total_threads=*/1);
  const workloads::RegContext init = workload.thread_regs(params, 0, 1);

  cpu::ArrayRegFile rf;
  for (u32 r = 0; r < isa::kNumAllocatableRegs; ++r) {
    rf.write_reg(0, static_cast<isa::RegId>(r), init[r]);
  }

  std::vector<u64> exec_count(program.size(), 0);
  RegUsageReport report;

  u64 pc = 0;
  u8 nzcv = 0;
  while (true) {
    if (report.instructions >= max_instructions) {
      throw std::runtime_error("profile_registers: instruction cap exceeded");
    }
    const isa::Inst& inst = program.at(pc);
    ++exec_count[pc];
    ++report.instructions;
    const isa::RegList regs = isa::all_regs(inst);
    for (u32 i = 0; i < regs.count; ++i) {
      ++report.access_counts[regs.regs[i]];
    }
    const isa::ExecResult res = isa::execute(inst, pc, 0, rf, memory, nzcv);
    if (res.halted) break;
    pc = res.next_pc;
  }

  // Classify instructions: the innermost loop executes at least half as
  // often as the hottest instruction.
  u64 hottest = 0;
  for (u64 c : exec_count) hottest = std::max(hottest, c);
  std::array<bool, isa::kNumAllocatableRegs> total_seen{};
  std::array<bool, isa::kNumAllocatableRegs> inner_seen{};
  for (u64 i = 0; i < program.size(); ++i) {
    if (exec_count[i] == 0) continue;
    const bool inner = exec_count[i] * 2 >= hottest;
    const isa::RegList regs = isa::all_regs(program.at(i));
    for (u32 r = 0; r < regs.count; ++r) {
      total_seen[regs.regs[r]] = true;
      if (inner) inner_seen[regs.regs[r]] = true;
    }
  }
  for (u32 r = 0; r < isa::kNumAllocatableRegs; ++r) {
    if (total_seen[r]) ++report.total_regs;
    if (inner_seen[r]) ++report.inner_regs;
  }
  return report;
}

}  // namespace virec::analysis
