// Dynamic register-usage characterisation (Figure 2 of the paper).
//
// A workload thread is executed functionally (no timing) while counting
// per-instruction execution frequencies; instructions executed at least
// half as often as the hottest instruction are classified as the
// innermost loop. The registers referenced by those instructions form
// the "active context" the ViReC register file is sized against.
#pragma once

#include <array>

#include "kasm/program.hpp"
#include "workloads/workload.hpp"

namespace virec::analysis {

struct RegUsageReport {
  /// Distinct allocatable registers referenced anywhere.
  u32 total_regs = 0;
  /// Distinct registers referenced by innermost-loop instructions.
  u32 inner_regs = 0;
  u64 instructions = 0;
  /// Per-register dynamic access counts (reads + writes), x0..x30.
  std::array<u64, isa::kNumAllocatableRegs> access_counts{};
  /// Fraction of the 31-register context active in the inner loop.
  double inner_fraction() const {
    return static_cast<double>(inner_regs) /
           static_cast<double>(isa::kNumAllocatableRegs);
  }
  double total_fraction() const {
    return static_cast<double>(total_regs) /
           static_cast<double>(isa::kNumAllocatableRegs);
  }
};

/// Profile thread 0 of @p workload under @p params.
/// @p max_instructions caps runaway programs (throws on overflow).
RegUsageReport profile_registers(const workloads::Workload& workload,
                                 const workloads::WorkloadParams& params,
                                 u64 max_instructions = 50'000'000);

}  // namespace virec::analysis
