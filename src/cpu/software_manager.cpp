#include "cpu/software_manager.hpp"

namespace virec::cpu {

SoftwareManager::SoftwareManager(const CoreEnv& env)
    : ContextManager(env, "swctx") {
  c_rf_accesses_ = stats_.counter("rf_accesses",
                                  "register-file reads and writes");
  c_context_saves_ = stats_.counter(
      "context_saves", "full software context saves to memory at switch");
  c_context_loads_ = stats_.counter(
      "context_loads", "full software context loads from memory at switch");
}

Cycle SoftwareManager::save_context(int tid, Cycle now) {
  // A software trampoline saves registers with stp pairs: one dcache
  // access per two registers.
  Cycle t = now;
  for (u8 r = 0; r < isa::kNumAllocatableRegs; ++r) {
    backing_write(tid, r, rf_[r]);
    if (r % 2 != 0) continue;
    const Addr addr = env_.ms->reg_addr(env_.core_id, static_cast<u32>(tid), r);
    t = dcache().access(addr, /*is_write=*/true, t).done;
  }
  // System register line (PC, NZCV, ...).
  t = dcache()
          .access(env_.ms->sysreg_addr(env_.core_id, static_cast<u32>(tid)),
                  /*is_write=*/true, t)
          .done;
  ++*c_context_saves_;
  return t;
}

Cycle SoftwareManager::load_context(int tid, Cycle now) {
  // ldp pairs: one dcache access per two registers.
  Cycle t = now;
  for (u8 r = 0; r < isa::kNumAllocatableRegs; ++r) {
    rf_[r] = backing_read(tid, r);
    if (r % 2 != 0) continue;
    const Addr addr = env_.ms->reg_addr(env_.core_id, static_cast<u32>(tid), r);
    t = dcache().access(addr, /*is_write=*/false, t).done;
  }
  t = dcache()
          .access(env_.ms->sysreg_addr(env_.core_id, static_cast<u32>(tid)),
                  /*is_write=*/false, t)
          .done;
  resident_tid_ = tid;
  ++*c_context_loads_;
  return t;
}

Cycle SoftwareManager::on_thread_start(int tid, Cycle now) {
  if (resident_tid_ == tid) return now;
  return now;  // context is loaded lazily at the first switch-in
}

DecodeAccess SoftwareManager::on_decode(int tid, const isa::Inst& inst,
                                        Cycle now) {
  (void)inst;
  ++*c_rf_accesses_;
  DecodeAccess acc;
  acc.ready = now;
  if (resident_tid_ != tid) {
    // First decode of a newly scheduled thread pulls in its context.
    Cycle t = now;
    if (resident_tid_ >= 0) t = save_context(resident_tid_, t);
    acc.ready = load_context(tid, t);
    acc.hit = false;
  }
  return acc;
}

Cycle SoftwareManager::on_context_switch(int from_tid, int to_tid,
                                         int predicted_next, Cycle now) {
  (void)from_tid;
  (void)to_tid;
  (void)predicted_next;
  // The save/restore cost is charged when the incoming thread first
  // decodes (on_decode), mirroring a software trampoline that runs
  // before the thread's own instructions.
  return now;
}

void SoftwareManager::on_thread_halt(int tid, Cycle now) {
  if (resident_tid_ == tid) {
    save_context(tid, now);
    resident_tid_ = -1;
  }
}

void SoftwareManager::warm_decode(int tid, const isa::Inst& /*inst*/,
                                  Cycle warm_now) {
  // read_reg falls back to the backing store for non-resident threads,
  // so this is warmth only: perform the save/load residency swap
  // functionally, mirroring the dcache footprint of the trampoline.
  if (resident_tid_ == tid) return;
  if (resident_tid_ >= 0) {
    const int old = resident_tid_;
    for (u8 r = 0; r < isa::kNumAllocatableRegs; ++r) {
      backing_write(old, r, rf_[r]);
      if (r % 2 != 0) continue;
      dcache().warm_access(
          env_.ms->reg_addr(env_.core_id, static_cast<u32>(old), r),
          /*is_write=*/true, warm_now);
    }
    dcache().warm_access(
        env_.ms->sysreg_addr(env_.core_id, static_cast<u32>(old)),
        /*is_write=*/true, warm_now);
  }
  for (u8 r = 0; r < isa::kNumAllocatableRegs; ++r) {
    rf_[r] = backing_read(tid, r);
    if (r % 2 != 0) continue;
    dcache().warm_access(
        env_.ms->reg_addr(env_.core_id, static_cast<u32>(tid), r),
        /*is_write=*/false, warm_now);
  }
  dcache().warm_access(env_.ms->sysreg_addr(env_.core_id,
                                            static_cast<u32>(tid)),
                       /*is_write=*/false, warm_now);
  resident_tid_ = tid;
}

void SoftwareManager::warm_thread_halt(int tid, Cycle warm_now) {
  if (resident_tid_ != tid) return;
  for (u8 r = 0; r < isa::kNumAllocatableRegs; ++r) {
    backing_write(tid, r, rf_[r]);
    if (r % 2 != 0) continue;
    dcache().warm_access(
        env_.ms->reg_addr(env_.core_id, static_cast<u32>(tid), r),
        /*is_write=*/true, warm_now);
  }
  dcache().warm_access(env_.ms->sysreg_addr(env_.core_id,
                                            static_cast<u32>(tid)),
                       /*is_write=*/true, warm_now);
  resident_tid_ = -1;
}

u32 SoftwareManager::physical_regs() const { return isa::kNumArchRegs; }

u64 SoftwareManager::read_reg(int tid, isa::RegId reg) {
  if (tid == resident_tid_) return rf_[reg];
  return backing_read(tid, reg);
}

void SoftwareManager::write_reg(int tid, isa::RegId reg, u64 value) {
  if (tid == resident_tid_) {
    rf_[reg] = value;
  } else {
    backing_write(tid, reg, value);
  }
}

void SoftwareManager::save_state(ckpt::Encoder& enc) const {
  ContextManager::save_state(enc);
  enc.put_i64(resident_tid_);
  for (u64 v : rf_) enc.put_u64(v);
}

void SoftwareManager::restore_state(ckpt::Decoder& dec) {
  ContextManager::restore_state(dec);
  resident_tid_ = static_cast<int>(dec.get_i64());
  for (u64& v : rf_) v = dec.get_u64();
}

}  // namespace virec::cpu
