#include "cpu/context_manager.hpp"

namespace virec::cpu {

ContextManager::ContextManager(const CoreEnv& env, const char* stat_prefix)
    : env_(env), stats_(stat_prefix) {}

u64 ContextManager::backing_read(int tid, isa::RegId reg) const {
  return env_.ms->memory().read_u64(
      env_.ms->reg_addr(env_.core_id, static_cast<u32>(tid), reg));
}

void ContextManager::backing_write(int tid, isa::RegId reg, u64 value) {
  env_.ms->memory().write_u64(
      env_.ms->reg_addr(env_.core_id, static_cast<u32>(tid), reg), value);
}

}  // namespace virec::cpu
