// Simplified out-of-order comparator core (the Neoverse-N1-class
// anchor in Figure 1 / Table 1 of the paper).
//
// Trace-driven dataflow timing: instructions execute functionally in
// program order while their dispatch/issue/complete/commit times are
// derived from operand readiness and resource limits (fetch width, ROB
// occupancy, LQ/SQ entries, dcache ports and MSHRs via the cache
// model). Branches are assumed predicted (the paper's workloads are
// loop kernels with near-perfect prediction); memory-level parallelism
// — the property the paper's comparison actually exercises — is limited
// by the LQ, the MSHRs and DRAM bank contention.
#pragma once

#include <array>

#include "common/cycle_account.hpp"
#include "common/stats.hpp"
#include "isa/semantics.hpp"
#include "kasm/program.hpp"
#include "mem/memory_system.hpp"

namespace virec::check {
class CheckContext;
}  // namespace virec::check

namespace virec::cpu {

struct OooCoreConfig {
  u32 width = 8;        // fetch/dispatch/commit width
  u32 rob_entries = 224;
  u32 lq_entries = 113;
  u32 sq_entries = 120;
  u32 mispredict_penalty = 12;
  u64 max_instructions = 2'000'000'000ull;
};

/// Plain array register file for the OoO model (no context switching).
class ArrayRegFile final : public isa::RegisterFileIO {
 public:
  u64 read_reg(int tid, isa::RegId reg) override {
    (void)tid;
    return regs_[reg];
  }
  void write_reg(int tid, isa::RegId reg, u64 value) override {
    (void)tid;
    regs_[reg] = value;
  }
  std::array<u64, isa::kNumAllocatableRegs>& regs() { return regs_; }

 private:
  std::array<u64, isa::kNumAllocatableRegs> regs_{};
};

class OooCore {
 public:
  OooCore(const OooCoreConfig& config, mem::MemorySystem& ms, u32 core_id,
          const kasm::Program& program);

  /// Run the program (single thread) to its halt; returns total cycles.
  Cycle run(u64 entry_pc = 0);

  u64 instructions() const { return instructions_; }
  Cycle cycles() const { return last_commit_; }
  double ipc() const {
    return last_commit_ == 0 ? 0.0
                             : static_cast<double>(instructions_) /
                                   static_cast<double>(last_commit_);
  }
  ArrayRegFile& regfile() { return rf_; }
  const StatSet& stats() const { return stats_; }

  /// Coarse commit-gap cycle accounting (closes against cycles() by
  /// construction; see run() for the attribution rules).
  const CycleAccount& cycle_account() const { return acct_; }

  /// Attach the lockstep oracle (nullptr detaches). Both core models
  /// support checked execution, so either can be validated in place.
  void set_check(check::CheckContext* check) { check_ = check; }

 private:
  OooCoreConfig config_;
  mem::MemorySystem& ms_;
  u32 core_id_;
  const kasm::Program& program_;
  ArrayRegFile rf_;
  u64 instructions_ = 0;
  Cycle last_commit_ = 0;
  StatSet stats_;
  CycleAccount acct_;
  check::CheckContext* check_ = nullptr;
};

}  // namespace virec::cpu
