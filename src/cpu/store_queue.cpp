#include "cpu/store_queue.hpp"

#include <algorithm>

namespace virec::cpu {

StoreQueue::StoreQueue(u32 capacity, mem::Cache& dcache)
    : capacity_(capacity), dcache_(dcache) {}

bool StoreQueue::push(Addr addr, Cycle now, bool reg_region) {
  u32 busy = 0;
  Cycle* reuse = nullptr;
  for (Cycle& c : completion_) {
    if (c > now) {
      ++busy;
    } else if (reuse == nullptr) {
      reuse = &c;
    }
  }
  if (busy >= capacity_) return false;
  const Cycle done = dcache_.access(addr, /*is_write=*/true, now, reg_region).done;
  last_completion_ = std::max(last_completion_, done);
  if (reuse != nullptr) {
    *reuse = done;
  } else {
    completion_.push_back(done);
  }
  return true;
}

u32 StoreQueue::occupancy(Cycle now) const {
  u32 busy = 0;
  for (Cycle c : completion_) {
    if (c > now) ++busy;
  }
  return busy;
}

}  // namespace virec::cpu
