#include "cpu/store_queue.hpp"

#include <algorithm>
#include <string>

#include "check/check.hpp"

namespace virec::cpu {

StoreQueue::StoreQueue(u32 capacity, mem::Cache& dcache)
    : capacity_(capacity), dcache_(dcache) {}

bool StoreQueue::push(Addr addr, Cycle now, bool reg_region) {
  u32 busy = 0;
  Cycle* reuse = nullptr;
  for (Cycle& c : completion_) {
    if (c > now) {
      ++busy;
    } else if (reuse == nullptr) {
      reuse = &c;
    }
  }
  VIREC_CHECK(check_, completion_.size() <= capacity_,
              "store queue holds " + std::to_string(completion_.size()) +
                  " entries, capacity " + std::to_string(capacity_));
  VIREC_CHECK(check_, busy <= capacity_,
              "store queue occupancy " + std::to_string(busy) +
                  " exceeds capacity " + std::to_string(capacity_));
  if (busy >= capacity_) return false;
  const Cycle done = dcache_.access(addr, /*is_write=*/true, now, reg_region).done;
  VIREC_CHECK(check_, done >= now,
              "dcache store completion " + std::to_string(done) +
                  " precedes issue cycle " + std::to_string(now));
  last_completion_ = std::max(last_completion_, done);
  if (reuse != nullptr) {
    *reuse = done;
  } else {
    completion_.push_back(done);
  }
  return true;
}

u32 StoreQueue::occupancy(Cycle now) const {
  u32 busy = 0;
  for (Cycle c : completion_) {
    if (c > now) ++busy;
  }
  return busy;
}

}  // namespace virec::cpu
