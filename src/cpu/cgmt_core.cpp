#include "cpu/cgmt_core.hpp"

#include <algorithm>
#include <stdexcept>

#include "check/check.hpp"
#include "common/log.hpp"

namespace virec::cpu {

CgmtCore::CgmtCore(const CgmtCoreConfig& config, const CoreEnv& env,
                   ContextManager& rcm, const kasm::Program& program)
    : config_(config),
      env_(env),
      rcm_(rcm),
      program_(program),
      sq_(config.sq_entries, env.ms->dcache(env.core_id)),
      icache_(env.ms->icache(env.core_id)),
      dcache_(env.ms->dcache(env.core_id)),
      threads_(config.num_threads),
      stats_("core"),
      acct_(stats_, config.num_threads) {
  if (env.num_threads != config.num_threads) {
    throw std::invalid_argument("CgmtCore: env/config thread count mismatch");
  }
  program_.validate();
  stats_.describe("cycles", "total simulated cycles of this core");
  stats_.describe("instructions", "instructions committed by this core");
  c_context_switches_ =
      stats_.counter("context_switches", "CGMT context switches taken");
  c_halts_ = stats_.counter("halts", "threads that executed HALT");
  c_branches_ = stats_.counter("branches", "committed branch instructions");
  c_mispredicts_ =
      stats_.counter("mispredicts", "BTFN branch mispredictions at commit");
  c_sq_full_stall_cycles_ = stats_.counter(
      "sq_full_stall_cycles", "cycles a store stalled on a full store queue");
  c_reg_region_miss_stalls_ = stats_.counter(
      "reg_region_miss_stalls", "loads that missed in the register region");
  c_dcache_data_misses_ = stats_.counter(
      "dcache_data_misses", "demand data misses signalled to the CSL");
  c_replay_misses_ = stats_.counter(
      "replay_misses", "data misses taken again while replaying after a switch");
  c_switch_no_target_cycles_ = stats_.counter(
      "switch_no_target_cycles",
      "cycles a pending switch found no ready thread");
  c_switch_masked_cycles_ = stats_.counter(
      "switch_masked_cycles", "cycles a pending switch was masked by the CSL");
  c_rf_miss_stall_cycles_ = stats_.counter(
      "rf_miss_stall_cycles", "decode stall cycles on register-file misses");
  c_idle_cycles_ =
      stats_.counter("idle_cycles", "cycles with no runnable thread");
  c_frontend_wait_cycles_ = stats_.counter(
      "frontend_wait_cycles", "cycles the empty pipe waited on fetch");
  hist_run_length_ = stats_.histogram(
      "run_length", "committed instructions between context switches");
  hist_miss_latency_ = stats_.histogram(
      "miss_latency", "cycles from dcache data-miss issue to data ready");
}

u32 CgmtCore::runnable_threads(Cycle now) const {
  u32 n = 0;
  for (const Thread& t : threads_) {
    if (t.started && !t.halted && t.blocked_until <= now) ++n;
  }
  return n;
}

void CgmtCore::start_thread(int tid, u64 entry_pc) {
  Thread& t = threads_.at(static_cast<std::size_t>(tid));
  if (t.started) throw std::logic_error("thread started twice");
  t.started = true;
  t.pc = entry_pc;
  ++live_threads_;
}

u64 CgmtCore::predict_next(const isa::Inst& inst, u64 pc) const {
  switch (inst.op) {
    case isa::Op::kB:
    case isa::Op::kBl:
      return static_cast<u64>(inst.target);
    case isa::Op::kBcond:
    case isa::Op::kCbz:
    case isa::Op::kCbnz:
      // Backward-taken / forward-not-taken.
      return static_cast<u64>(inst.target) <= pc
                 ? static_cast<u64>(inst.target)
                 : pc + 1;
    default:
      return pc + 1;  // ret predicted fall-through (resolved at commit)
  }
}

int CgmtCore::pick_next_thread() const {
  const u32 n = config_.num_threads;
  if (current_tid_ < 0) {
    // Initial schedule: first ready thread, else earliest to become ready.
    int best = -1;
    for (u32 tid = 0; tid < n; ++tid) {
      const Thread& t = threads_[tid];
      if (!t.started || t.halted) continue;
      if (t.blocked_until <= cycle_) return static_cast<int>(tid);
      if (best < 0 ||
          t.blocked_until < threads_[static_cast<u32>(best)].blocked_until) {
        best = static_cast<int>(tid);
      }
    }
    return best;
  }
  // Round-robin from the current thread over *ready* candidates only.
  // If every other thread is still blocked, the pending switch request
  // is retried each cycle, so threads resume in data-arrival order.
  for (u32 step = 1; step < n; ++step) {
    const u32 tid = (static_cast<u32>(current_tid_) + step) % n;
    const Thread& t = threads_[tid];
    if (!t.started || t.halted) continue;
    if (t.blocked_until <= cycle_) return static_cast<int>(tid);
  }
  return -1;
}

int CgmtCore::predict_thread_after(int after) const {
  // Mirror pick_next_thread()'s ready-first round-robin so the sysreg
  // ping-pong buffer and the register prefetchers target the thread the
  // scheduler will actually choose.
  const u32 n = config_.num_threads;
  int best = -1;
  for (u32 step = 1; step < n; ++step) {
    const u32 tid = (static_cast<u32>(after) + step) % n;
    const Thread& t = threads_[tid];
    if (!t.started || t.halted || static_cast<int>(tid) == after ||
        static_cast<int>(tid) == current_tid_) {
      continue;
    }
    if (t.blocked_until <= cycle_) return static_cast<int>(tid);
    if (best < 0 ||
        t.blocked_until < threads_[static_cast<u32>(best)].blocked_until) {
      best = static_cast<int>(tid);
    }
  }
  return best;
}

void CgmtCore::flush_pipeline(bool replayed) {
  (void)replayed;
  if_.valid = false;
  id_.valid = false;
  ex_.valid = false;
  mem_.valid = false;
  switch_pending_ = false;
}

void CgmtCore::switch_to(int to_tid) {
  Thread& t = threads_[static_cast<std::size_t>(to_tid)];
  if (t.has_reserved_line) {
    dcache_.release_line(t.reserved_line);
    t.has_reserved_line = false;
  }
  current_tid_ = to_tid;
  fetch_pc_ = t.pc;
  Cycle ready = std::max(cycle_ + 1, t.blocked_until);
  if (!t.launched_context) {
    t.launched_context = true;
    t.start_ready = rcm_.on_thread_start(to_tid, ready);
  }
  ready = std::max(ready, t.start_ready);
  fetch_ready_ = ready;
  fetch_wait_cause_ = kFwSwitch;
}

bool CgmtCore::request_context_switch(u64 resume_pc, Cycle miss_done) {
  Thread& cur = threads_[static_cast<std::size_t>(current_tid_)];
  const int next = pick_next_thread();
  if (next < 0 || next == current_tid_) {
    // No ready thread this cycle; the pending request is retried.
    return false;
  }
  if (tracer_ != nullptr) {
    tracer_->on_context_switch(cycle_, current_tid_, next, resume_pc);
  }
  cur.pc = resume_pc;
  cur.blocked_until = miss_done;
  // Hold the miss response for this thread: the line it is waiting on
  // must survive until the replayed load consumes it.
  cur.has_reserved_line =
      dcache_.reserve_line(mem_.mem_addr);
  cur.reserved_line = mem_.mem_addr;
  flush_pipeline(/*replayed=*/true);
  ++*c_context_switches_;
  hist_run_length_->record(
      static_cast<double>(instructions_ - episode_start_instructions_));
  episode_start_instructions_ = instructions_;
  const Cycle csl_ready = rcm_.on_context_switch(
      current_tid_, next, predict_thread_after(next), cycle_);
  switch_to(next);
  fetch_ready_ = std::max(fetch_ready_, csl_ready);
  committed_since_switch_ = false;
  tag_cycle(CycleBucket::kSwitchOverhead);
  return true;
}

void CgmtCore::commit(Latch& latch) {
  const int tid = current_tid_;
  // The commit cycle belongs to the committing thread even when the
  // halt path below switches away in the same step.
  acct_tag_ = CycleBucket::kCommit;
  acct_tid_ = tid;
  Thread& t = threads_[static_cast<std::size_t>(tid)];
  if (check_ != nullptr) {
    check_->pre_commit(env_.core_id, tid, latch.inst, latch.pc, cycle_, rcm_,
                       t.nzcv);
  }
  const isa::ExecResult res = isa::execute(
      latch.inst, latch.pc, tid, rcm_, env_.ms->memory(), t.nzcv);
  rcm_.on_commit(tid, latch.inst);
  if (check_ != nullptr) {
    check_->post_commit(env_.core_id, tid, latch.inst, latch.pc, cycle_, rcm_,
                        t.nzcv, res);
  }
  ++instructions_;
  committed_since_switch_ = true;
  latch.valid = false;
  if (tracer_ != nullptr) tracer_->on_commit(cycle_, tid, latch.pc, latch.inst);

  if (res.halted) {
    if (tracer_ != nullptr) tracer_->on_halt(cycle_, tid);
    t.halted = true;
    --live_threads_;
    rcm_.on_thread_halt(tid, cycle_);
    flush_pipeline(/*replayed=*/false);
    rcm_.on_mispredict_flush(tid);
    ++*c_halts_;
    hist_run_length_->record(
        static_cast<double>(instructions_ - episode_start_instructions_));
    episode_start_instructions_ = instructions_;
    const int next = pick_next_thread();
    if (next >= 0 && next != tid) {
      const Cycle csl_ready = rcm_.on_context_switch(
          tid, next, predict_thread_after(next), cycle_);
      switch_to(next);
      fetch_ready_ = std::max(fetch_ready_, csl_ready);
      committed_since_switch_ = false;
    } else {
      current_tid_ = -1;
    }
    return;
  }

  if (res.taken_branch || isa::is_branch(latch.inst.op)) {
    ++*c_branches_;
  }
  if (res.next_pc != latch.pred_next) {
    // Misprediction: discard wrong-path in-flight instructions.
    ++*c_mispredicts_;
    if (tracer_ != nullptr) {
      tracer_->on_mispredict(cycle_, tid, latch.pc, res.next_pc);
    }
    flush_pipeline(/*replayed=*/false);
    rcm_.on_mispredict_flush(tid);
    fetch_pc_ = res.next_pc;
    fetch_ready_ = std::max(fetch_ready_, cycle_ + 1);
    fetch_wait_cause_ = kFwMispredict;
  }
}

void CgmtCore::handle_mem_and_commit() {
  if (!mem_.valid || current_tid_ < 0) return;
  if (!mem_.mem_issued) {
    if (isa::is_mem(mem_.inst.op)) {
      const Addr addr = isa::compute_mem_addr(mem_.inst, current_tid_, rcm_);
      const bool reg_region = env_.ms->in_reg_region(addr);
      if (isa::is_store(mem_.inst.op)) {
        if (!sq_.push(addr, cycle_, reg_region)) {
          ++*c_sq_full_stall_cycles_;
          tag_cycle(CycleBucket::kSqFull);
          return;  // retry next cycle
        }
        mem_.ready = cycle_;
        mem_.mem_issued = true;
      } else {
        const mem::CacheAccess acc =
            dcache_.access(addr, /*is_write=*/false, cycle_, reg_region);
        mem_.mem_issued = true;
        mem_.mem_addr = addr;
        if (acc.hit) {
          // Pipelined hit: the final access cycle overlaps writeback.
          mem_.ready = std::max(cycle_, acc.done - 1);
          mem_.mem_kind = 0;
        } else if (reg_region) {
          // Register backing-store miss: never a context switch.
          mem_.ready = acc.done;
          mem_.mem_kind = acc.mshr_stall ? 3 : 2;
          ++*c_reg_region_miss_stalls_;
        } else {
          ++*c_dcache_data_misses_;
          hist_miss_latency_->record(static_cast<double>(acc.done - cycle_));
          if (!committed_since_switch_) ++*c_replay_misses_;
          if (tracer_ != nullptr) {
            tracer_->on_data_miss(cycle_, current_tid_, mem_.pc, addr,
                                  acc.done);
          }
          mem_.ready = acc.done;
          mem_.mem_kind = acc.mshr_stall ? 3 : 1;
          if (config_.switch_on_miss) {
            // The miss signal to the CSL arrives after the dcache tag
            // check (Figure 4, (C) -> (D)).
            switch_pending_ = true;
            switch_eligible_at_ =
                cycle_ + env_.ms->config().dcache.hit_latency;
          }
        }
      }
    } else {
      mem_.ready = cycle_;
      mem_.mem_issued = true;
    }
  }
  if (switch_pending_) {
    // The switch request stays pending until the CSL masks (outstanding
    // BSI fill, no commit since last switch) clear — or the miss
    // returns first and execution simply continues.
    if (cycle_ >= mem_.ready) {
      switch_pending_ = false;
    } else if (cycle_ >= switch_eligible_at_ && rcm_.switch_allowed(cycle_) &&
               committed_since_switch_) {
      if (request_context_switch(mem_.pc, mem_.ready)) return;
      ++*c_switch_no_target_cycles_;
      tag_cycle(CycleBucket::kSwitchNoTarget);
    } else {
      ++*c_switch_masked_cycles_;
      tag_cycle(CycleBucket::kSwitchMasked);
    }
  }
  if (cycle_ >= mem_.ready) commit(mem_);
}

void CgmtCore::advance_ex_mem() {
  if (ex_.valid && !mem_.valid && cycle_ >= ex_.ready) {
    mem_ = ex_;
    mem_.mem_issued = false;
    ex_.valid = false;
  }
}

void CgmtCore::advance_id_ex() {
  if (id_.valid && !ex_.valid && cycle_ >= id_.ready) {
    ex_ = id_;
    ex_.ready = cycle_ + isa::op_latency(id_.inst.op);
    id_.valid = false;
  }
}

void CgmtCore::advance_if_id() {
  if (if_.valid && !id_.valid && cycle_ >= if_.ready) {
    id_ = if_;
    if_.valid = false;
    // Decode-stage register access through the context manager.
    const DecodeAccess da = rcm_.on_decode(current_tid_, id_.inst, cycle_);
    id_.decoded = true;
    id_.ready = std::max(cycle_ + 1, da.ready);
    id_.fill_wait = !da.hit;
    if (!da.hit) {
      *c_rf_miss_stall_cycles_ += double(id_.ready - (cycle_ + 1));
    }
  }
}

void CgmtCore::do_fetch() {
  if (if_.valid || current_tid_ < 0 || cycle_ < fetch_ready_) return;
  if (fetch_pc_ >= program_.size()) return;  // wrong-path runoff
  const isa::Inst& inst = program_.at(fetch_pc_);
  const mem::CacheAccess acc =
      icache_.access(mem::MemorySystem::code_addr(fetch_pc_), false, cycle_);
  if_.valid = true;
  if_.pc = fetch_pc_;
  if_.inst = inst;
  if_.decoded = false;
  if_.mem_issued = false;
  if_.fill_wait = false;
  if_.mem_kind = 0;
  // Pipelined icache: hits deliver next cycle, misses stall the front end.
  if_.ready = acc.hit ? cycle_ + 1 : acc.done;
  if_.pred_next = predict_next(inst, fetch_pc_);
  if (tracer_ != nullptr) {
    tracer_->on_fetch(cycle_, current_tid_, fetch_pc_, inst);
  }
  fetch_pc_ = if_.pred_next;
}

void CgmtCore::step() {
  if (live_threads_ == 0) return;
  acct_tag_ = CycleBucket::kCount;  // untagged until an event claims it
  acct_tid_ = -1;
  if (current_tid_ < 0) {
    const int next = pick_next_thread();
    if (next >= 0) {
      const Cycle csl_ready =
          rcm_.on_context_switch(-1, next, predict_thread_after(next), cycle_);
      switch_to(next);
      fetch_ready_ = std::max(fetch_ready_, csl_ready);
      tag_cycle(CycleBucket::kSwitchOverhead);
    } else {
      ++*c_idle_cycles_;
      acct_.charge(CycleBucket::kIdle, -1);
      ++cycle_;
      VIREC_CHECK(check_, acct_.total() == static_cast<double>(cycle_),
                  "cycle accounting must close (idle)");
      return;
    }
  }
  // A fully idle frontend+pipeline while the current thread is blocked
  // counts as stall cycles.
  handle_mem_and_commit();
  advance_ex_mem();
  advance_id_ex();
  // Once a context switch is pending, the front end freezes: decoding
  // further instructions that are about to be flushed would only
  // trigger pointless register fills (which would in turn mask the
  // switch longer).
  if (!switch_pending_) {
    advance_if_id();
    do_fetch();
  }
  if (!if_.valid && !id_.valid && !ex_.valid && !mem_.valid &&
      cycle_ < fetch_ready_) {
    ++*c_frontend_wait_cycles_;
  }
  // Cycle accounting: if no event tagged this cycle, classify the
  // (quiet) state — the same function skip_to() bulk-charges with.
  if (acct_tag_ == CycleBucket::kCount) {
    acct_tag_ = classify_quiet();
    acct_tid_ = current_tid_;
  }
  acct_.charge(acct_tag_, acct_tid_);
  ++cycle_;
  VIREC_CHECK(check_, acct_.total() == static_cast<double>(cycle_),
              "cycle accounting must close after step");
}

Cycle CgmtCore::earliest_other_thread_ready() const {
  Cycle next = kNeverCycle;
  for (u32 tid = 0; tid < config_.num_threads; ++tid) {
    const Thread& t = threads_[tid];
    if (!t.started || t.halted || static_cast<int>(tid) == current_tid_) {
      continue;
    }
    if (t.blocked_until > cycle_ && t.blocked_until < next) {
      next = t.blocked_until;
    }
  }
  return next;
}

CycleBucket CgmtCore::classify_quiet() const {
  // Priority mirrors the head-of-line blocking structure of the pipe:
  // no thread, then a frozen switch request, then the oldest latch
  // (MEM outwards), then the empty-pipe fetch wait. Every input is
  // constant across a quiet stretch (next_event_cycle() bounds them),
  // so one evaluation at the stretch head equals per-cycle evaluation.
  if (current_tid_ < 0) return CycleBucket::kIdle;
  if (switch_pending_) {
    return (cycle_ >= switch_eligible_at_ && committed_since_switch_ &&
            rcm_.switch_allowed(cycle_))
               ? CycleBucket::kSwitchNoTarget
               : CycleBucket::kSwitchMasked;
  }
  if (mem_.valid) {
    if (mem_.mem_issued && cycle_ < mem_.ready) {
      switch (mem_.mem_kind) {
        case 1:
          return CycleBucket::kMemData;
        case 2:
          return CycleBucket::kMemReg;
        case 3:
          return CycleBucket::kMemMshr;
        default:
          return CycleBucket::kPipeline;  // pipelined hit / non-mem latency
      }
    }
    return CycleBucket::kPipeline;
  }
  if (ex_.valid) return CycleBucket::kPipeline;
  if (id_.valid) {
    return id_.fill_wait ? CycleBucket::kDecodeFill : CycleBucket::kPipeline;
  }
  if (if_.valid) return CycleBucket::kFrontendWait;
  if (cycle_ < fetch_ready_) {
    switch (fetch_wait_cause_) {
      case kFwSwitch:
        return CycleBucket::kSwitchOverhead;
      case kFwMispredict:
        return CycleBucket::kMispredictRedirect;
      default:
        return CycleBucket::kFrontendWait;
    }
  }
  // Wrong-path runoff / store-queue drain with nothing else to do.
  return CycleBucket::kPipeline;
}

Cycle CgmtCore::next_event_cycle() const {
  if (live_threads_ == 0) return cycle_;  // done; nothing to wait for
  if (current_tid_ < 0) {
    // live_threads_ > 0 guarantees the initial-schedule branch of
    // pick_next_thread() finds a candidate (it accepts blocked
    // threads), so the very next step schedules one. The kNeverCycle
    // arm is defensive.
    return pick_next_thread() >= 0 ? cycle_ : kNeverCycle;
  }
  Cycle next = kNeverCycle;
  if (mem_.valid) {
    // An unissued memory stage (including a store stalled on a full
    // store queue) re-runs real issue work every cycle, and a ready
    // one commits: both are immediate events.
    if (!mem_.mem_issued || cycle_ >= mem_.ready) return cycle_;
    next = std::min(next, mem_.ready);
    if (switch_pending_) {
      if (cycle_ < switch_eligible_at_) {
        next = std::min(next, switch_eligible_at_);
      } else if (committed_since_switch_) {
        if (!rcm_.switch_allowed(cycle_)) {
          // Masked by the scheme (outstanding BSI fill); quiet until
          // the mask clears.
          next = std::min(next, rcm_.next_event_cycle(cycle_));
        } else if (pick_next_thread() >= 0) {
          return cycle_;  // switch target available: next step switches
        } else {
          // No ready target; one appears when another thread's miss
          // returns.
          next = std::min(next, earliest_other_thread_ready());
        }
      }
      // Masked purely by !committed_since_switch_: that cannot clear
      // before the miss itself returns at mem_.ready (already bounded).
    }
  }
  if (ex_.valid && !mem_.valid) {
    if (cycle_ >= ex_.ready) return cycle_;
    next = std::min(next, ex_.ready);
  }
  // ID -> EX still advances while a switch is pending (only the front
  // end freezes), so these bounds apply unconditionally.
  if (id_.valid && !ex_.valid) {
    if (cycle_ >= id_.ready) return cycle_;
    next = std::min(next, id_.ready);
  }
  if (!switch_pending_) {
    if (if_.valid && !id_.valid) {
      if (cycle_ >= if_.ready) return cycle_;
      next = std::min(next, if_.ready);
    }
    if (!if_.valid) {
      if (fetch_pc_ < program_.size()) {
        if (cycle_ >= fetch_ready_) return cycle_;
        next = std::min(next, fetch_ready_);
      } else if (!id_.valid && !ex_.valid && !mem_.valid &&
                 cycle_ < fetch_ready_) {
        // Wrong-path runoff with an empty pipeline: nothing will ever
        // fetch again, but frontend_wait_cycles accrues only while
        // cycle_ < fetch_ready_, so the quiet stretch must break there
        // to keep the counter bit-exact.
        next = std::min(next, fetch_ready_);
      }
    }
  }
  // Conservative clamp: a draining store-queue entry is future-dated
  // state other components observe (occupancy, port ordering).
  next = std::min(next, sq_.next_event_cycle(cycle_));
  return next;
}

void CgmtCore::skip_to(Cycle target) {
  // Precondition: cycle_ < target <= next_event_cycle(). Within that
  // stretch every stepped cycle would only advance the clock and bump
  // the single stall counter classified here, so bulk-adding the span
  // is bit-exact. The branch conditions mirror step()'s per-cycle
  // bookkeeping; next_event_cycle()'s bounds guarantee none of them
  // change before @p target.
  const double span = static_cast<double>(target - cycle_);
  // Closed accounting first: classify_quiet() is exactly what step()
  // charges each untagged cycle, so one bulk add is bit-identical to
  // stepping the stretch.
  acct_.charge(classify_quiet(), current_tid_, span);
  if (current_tid_ < 0) {
    *c_idle_cycles_ += span;
  } else if (switch_pending_) {
    if (cycle_ >= switch_eligible_at_ && committed_since_switch_ &&
        rcm_.switch_allowed(cycle_)) {
      *c_switch_no_target_cycles_ += span;
    } else {
      *c_switch_masked_cycles_ += span;
    }
  } else if (!if_.valid && !id_.valid && !ex_.valid && !mem_.valid &&
             cycle_ < fetch_ready_) {
    *c_frontend_wait_cycles_ += span;
  }
  cycle_ = target;
  VIREC_CHECK(check_, acct_.total() == static_cast<double>(cycle_),
              "cycle accounting must close after skip");
}

void CgmtCore::throw_max_cycles() const {
  throw std::runtime_error("CgmtCore: max_cycles (" +
                           std::to_string(config_.max_cycles) +
                           ") exceeded; " + watchdog_diagnosis());
}

void CgmtCore::run() {
  // First cycle at which the watchdog fires, saturating so a maximal
  // budget disables it. Clamping skips here keeps the throw cycle (and
  // the stall counters at that point) identical to the stepped loop.
  const Cycle limit =
      config_.max_cycles + 1 == 0 ? kNeverCycle : config_.max_cycles + 1;
  while (!done()) {
    if (config_.skip && maybe_quiet()) {
      const Cycle target = std::min(next_event_cycle(), limit);
      if (target > cycle_ + 1) {
        skip_to(target);
        if (cycle_ > config_.max_cycles) throw_max_cycles();
        continue;
      }
    }
    step();
    if (cycle_ > config_.max_cycles) throw_max_cycles();
  }
  stats_.set("cycles", static_cast<double>(cycle_));
  stats_.set("instructions", static_cast<double>(instructions_));
}

void CgmtCore::run_insts(u64 max_insts) {
  const u64 target = instructions_ + max_insts;
  const Cycle limit =
      config_.max_cycles + 1 == 0 ? kNeverCycle : config_.max_cycles + 1;
  while (!done() && instructions_ < target) {
    if (config_.skip && maybe_quiet()) {
      const Cycle skip_target = std::min(next_event_cycle(), limit);
      if (skip_target > cycle_ + 1) {
        skip_to(skip_target);
        if (cycle_ > config_.max_cycles) throw_max_cycles();
        continue;
      }
    }
    step();
    if (cycle_ > config_.max_cycles) throw_max_cycles();
  }
}

int CgmtCore::cut_to_functional() {
  const int was_running = current_tid_;
  if (current_tid_ >= 0) {
    Thread& cur = threads_[static_cast<std::size_t>(current_tid_)];
    // The oldest un-committed instruction (MEM outwards) resumes the
    // thread; with an empty pipe the fetch cursor is exact. Everything
    // squashed here re-executes functionally, so dropping the rollback
    // entries mirrors a wrong-path flush.
    if (mem_.valid) {
      cur.pc = mem_.pc;
    } else if (ex_.valid) {
      cur.pc = ex_.pc;
    } else if (id_.valid) {
      cur.pc = id_.pc;
    } else if (if_.valid) {
      cur.pc = if_.pc;
    } else {
      cur.pc = fetch_pc_;
    }
    flush_pipeline(/*replayed=*/true);
    rcm_.on_mispredict_flush(current_tid_);
    current_tid_ = -1;
  }
  // Reservations pin miss lines for replay; the functional tier
  // completes those loads itself, and a pinned line would corrupt warm
  // victim selection.
  for (Thread& t : threads_) {
    if (t.has_reserved_line) {
      dcache_.release_line(t.reserved_line);
      t.has_reserved_line = false;
    }
  }
  committed_since_switch_ = true;
  return was_running;
}

void CgmtCore::resume_from_functional(Cycle warm_clock, u64 retired) {
  if (warm_clock > cycle_) {
    acct_.charge(CycleBucket::kFastForward, -1,
                 static_cast<double>(warm_clock - cycle_));
    cycle_ = warm_clock;
  }
  instructions_ += retired;
  episode_start_instructions_ = instructions_;
  for (Thread& t : threads_) {
    // Outstanding-miss data and initial contexts arrived functionally.
    if (t.blocked_until > cycle_) t.blocked_until = cycle_;
    if (t.start_ready > cycle_) t.start_ready = cycle_;
  }
  fetch_ready_ = cycle_;
  fetch_wait_cause_ = kFwFetch;
  VIREC_CHECK(check_, acct_.total() == static_cast<double>(cycle_),
              "cycle accounting must close after fast-forward");
}

std::vector<CgmtCore::ThreadProbeState> CgmtCore::probe_snapshot() const {
  std::vector<ThreadProbeState> snap(threads_.size());
  for (std::size_t i = 0; i < threads_.size(); ++i) {
    snap[i] = {threads_[i].halted, threads_[i].pc, threads_[i].nzcv};
  }
  return snap;
}

void CgmtCore::probe_restore(const std::vector<ThreadProbeState>& snap) {
  live_threads_ = 0;
  for (std::size_t i = 0; i < threads_.size(); ++i) {
    Thread& t = threads_[i];
    t.halted = snap[i].halted;
    t.pc = snap[i].pc;
    t.nzcv = snap[i].nzcv;
    // Outstanding-miss data arrives functionally during the replay.
    if (t.blocked_until > cycle_) t.blocked_until = cycle_;
    if (t.started && !t.halted) ++live_threads_;
  }
}

void CgmtCore::halt_thread_functional(int tid) {
  Thread& t = threads_[static_cast<std::size_t>(tid)];
  t.halted = true;
  --live_threads_;
  if (t.has_reserved_line) {
    dcache_.release_line(t.reserved_line);
    t.has_reserved_line = false;
  }
  ++*c_halts_;
}

std::string CgmtCore::watchdog_diagnosis() const {
  std::string out = "core " + std::to_string(env_.core_id) + " at cycle " +
                    std::to_string(cycle_) + ": ";
  if (current_tid_ < 0) {
    out += "no thread running";
  } else {
    const Thread& t = threads_[static_cast<std::size_t>(current_tid_)];
    out += "thread " + std::to_string(current_tid_) + " at pc " +
           std::to_string(t.pc);
    if (t.blocked_until > cycle_) {
      out += " (blocked until cycle " + std::to_string(t.blocked_until) + ")";
    }
  }
  out += ", " + std::to_string(runnable_threads(cycle_)) + "/" +
         std::to_string(live_threads_) + " threads runnable";
  if (switch_pending_) out += ", context switch pending";
  return out;
}

namespace {

void save_inst(ckpt::Encoder& enc, const isa::Inst& inst) {
  enc.put_u8(static_cast<u8>(inst.op));
  enc.put_u8(inst.rd);
  enc.put_u8(inst.rn);
  enc.put_u8(inst.rm);
  enc.put_u8(inst.ra);
  enc.put_u8(static_cast<u8>(inst.cond));
  enc.put_u8(static_cast<u8>(inst.mem_mode));
  enc.put_u8(inst.shift);
  enc.put_u8(inst.imm2);
  enc.put_i64(inst.imm);
  enc.put_i64(inst.target);
}

void restore_inst(ckpt::Decoder& dec, isa::Inst& inst) {
  inst.op = static_cast<isa::Op>(dec.get_u8());
  inst.rd = dec.get_u8();
  inst.rn = dec.get_u8();
  inst.rm = dec.get_u8();
  inst.ra = dec.get_u8();
  inst.cond = static_cast<isa::Cond>(dec.get_u8());
  inst.mem_mode = static_cast<isa::MemMode>(dec.get_u8());
  inst.shift = dec.get_u8();
  inst.imm2 = dec.get_u8();
  inst.imm = dec.get_i64();
  inst.target = dec.get_i64();
}

}  // namespace

void CgmtCore::save_state(ckpt::Encoder& enc) const {
  enc.put_u32(static_cast<u32>(threads_.size()));
  for (const Thread& t : threads_) {
    enc.put_bool(t.started);
    enc.put_bool(t.halted);
    enc.put_u64(t.pc);
    enc.put_u8(t.nzcv);
    enc.put_u64(t.blocked_until);
    enc.put_u64(t.start_ready);
    enc.put_bool(t.launched_context);
    enc.put_bool(t.has_reserved_line);
    enc.put_u64(t.reserved_line);
  }
  const auto save_latch = [&enc](const Latch& l) {
    enc.put_bool(l.valid);
    enc.put_u64(l.pc);
    enc.put_u64(l.pred_next);
    save_inst(enc, l.inst);
    enc.put_u64(l.ready);
    enc.put_bool(l.decoded);
    enc.put_bool(l.mem_issued);
    enc.put_u64(l.mem_addr);
    enc.put_bool(l.fill_wait);
    enc.put_u8(l.mem_kind);
  };
  save_latch(if_);
  save_latch(id_);
  save_latch(ex_);
  save_latch(mem_);
  enc.put_u64(cycle_);
  enc.put_u64(instructions_);
  enc.put_i64(current_tid_);
  enc.put_u32(live_threads_);
  enc.put_bool(committed_since_switch_);
  enc.put_u64(fetch_ready_);
  enc.put_u64(fetch_pc_);
  enc.put_bool(switch_pending_);
  enc.put_u64(switch_eligible_at_);
  enc.put_u8(fetch_wait_cause_);
  enc.put_u64(episode_start_instructions_);
  sq_.save_state(enc);
  stats_.save_state(enc);
}

void CgmtCore::restore_state(ckpt::Decoder& dec) {
  const u32 n_threads = dec.get_u32();
  if (n_threads != threads_.size()) {
    throw ckpt::CkptError("CgmtCore: snapshot has " +
                          std::to_string(n_threads) + " threads, core has " +
                          std::to_string(threads_.size()));
  }
  for (Thread& t : threads_) {
    t.started = dec.get_bool();
    t.halted = dec.get_bool();
    t.pc = dec.get_u64();
    t.nzcv = dec.get_u8();
    t.blocked_until = dec.get_u64();
    t.start_ready = dec.get_u64();
    t.launched_context = dec.get_bool();
    t.has_reserved_line = dec.get_bool();
    t.reserved_line = dec.get_u64();
  }
  const auto restore_latch = [&dec](Latch& l) {
    l.valid = dec.get_bool();
    l.pc = dec.get_u64();
    l.pred_next = dec.get_u64();
    restore_inst(dec, l.inst);
    l.ready = dec.get_u64();
    l.decoded = dec.get_bool();
    l.mem_issued = dec.get_bool();
    l.mem_addr = dec.get_u64();
    l.fill_wait = dec.get_bool();
    l.mem_kind = dec.get_u8();
  };
  restore_latch(if_);
  restore_latch(id_);
  restore_latch(ex_);
  restore_latch(mem_);
  cycle_ = dec.get_u64();
  instructions_ = dec.get_u64();
  current_tid_ = static_cast<int>(dec.get_i64());
  live_threads_ = dec.get_u32();
  committed_since_switch_ = dec.get_bool();
  fetch_ready_ = dec.get_u64();
  fetch_pc_ = dec.get_u64();
  switch_pending_ = dec.get_bool();
  switch_eligible_at_ = dec.get_u64();
  fetch_wait_cause_ = dec.get_u8();
  episode_start_instructions_ = dec.get_u64();
  sq_.restore_state(dec);
  stats_.restore_state(dec);
}

}  // namespace virec::cpu
