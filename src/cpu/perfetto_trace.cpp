#include "cpu/perfetto_trace.hpp"

#include <ostream>
#include <sstream>

#include "common/json.hpp"
#include "isa/disasm.hpp"

namespace virec::cpu {

PerfettoTraceWriter::PerfettoTraceWriter(std::ostream& os) : os_(os) {
  os_ << "[";
}

PerfettoTraceWriter::~PerfettoTraceWriter() { finish(); }

void PerfettoTraceWriter::finish() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (finished_) return;
  finished_ = true;
  os_ << "\n]\n";
  os_.flush();
}

void PerfettoTraceWriter::event_prefix(const char* ph, const std::string& name,
                                       const char* category, u32 pid, u32 tid,
                                       Cycle ts) {
  if (!first_) os_ << ",";
  first_ = false;
  ++events_;
  os_ << "\n{\"name\": " << JsonWriter::quote(name) << ", \"ph\": \"" << ph
      << "\", \"cat\": \"" << category << "\", \"pid\": " << pid
      << ", \"tid\": " << tid << ", \"ts\": " << ts;
}

void PerfettoTraceWriter::process_name(u32 pid, const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (finished_) return;
  if (!first_) os_ << ",";
  first_ = false;
  ++events_;
  os_ << "\n{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": " << pid
      << ", \"args\": {\"name\": " << JsonWriter::quote(name) << "}}";
}

void PerfettoTraceWriter::thread_name(u32 pid, u32 tid,
                                      const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (finished_) return;
  if (!first_) os_ << ",";
  first_ = false;
  ++events_;
  os_ << "\n{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": " << pid
      << ", \"tid\": " << tid
      << ", \"args\": {\"name\": " << JsonWriter::quote(name) << "}}";
}

void PerfettoTraceWriter::complete_event(const std::string& name,
                                         const char* category, u32 pid,
                                         u32 tid, Cycle ts, Cycle dur,
                                         const std::string& args_json) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (finished_) return;
  event_prefix("X", name, category, pid, tid, ts);
  os_ << ", \"dur\": " << dur;
  if (!args_json.empty()) os_ << ", \"args\": " << args_json;
  os_ << "}";
}

void PerfettoTraceWriter::instant_event(const std::string& name,
                                        const char* category, u32 pid,
                                        u32 tid, Cycle ts) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (finished_) return;
  event_prefix("i", name, category, pid, tid, ts);
  os_ << ", \"s\": \"t\"}";
}

void PerfettoTraceWriter::counter_event(const std::string& name, u32 pid,
                                        Cycle ts,
                                        const std::string& args_json) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (finished_) return;
  // Counter tracks are process-scoped in the trace-event format: no
  // tid, and the args object carries one entry per plotted series.
  if (!first_) os_ << ",";
  first_ = false;
  ++events_;
  os_ << "\n{\"name\": " << JsonWriter::quote(name)
      << ", \"ph\": \"C\", \"cat\": \"counter\", \"pid\": " << pid
      << ", \"ts\": " << ts << ", \"args\": " << args_json << "}";
}

PerfettoTracer::PerfettoTracer(PerfettoTraceWriter& writer, u32 core_id,
                               u32 num_threads)
    : writer_(writer),
      core_id_(core_id),
      residency_start_(num_threads, kNeverCycle),
      commits_in_episode_(num_threads, 0) {
  writer_.process_name(core_id_, "core" + std::to_string(core_id_));
  for (u32 t = 0; t < num_threads; ++t) {
    writer_.thread_name(core_id_, t, "t" + std::to_string(t));
    writer_.thread_name(core_id_, miss_track(static_cast<int>(t)),
                        "t" + std::to_string(t) + " misses");
  }
}

u32 PerfettoTracer::miss_track(int tid) const {
  // Keep miss-stall spans off the residency track: a miss outlives the
  // residency span that issued it (the thread switches away), and
  // partially overlapping slices on one track do not render.
  return 1000 + static_cast<u32>(tid);
}

void PerfettoTracer::open_residency(int tid, Cycle cycle) {
  auto& start = residency_start_[static_cast<std::size_t>(tid)];
  if (start == kNeverCycle) {
    start = cycle;
    commits_in_episode_[static_cast<std::size_t>(tid)] = 0;
  }
}

void PerfettoTracer::close_residency(int tid, Cycle cycle) {
  if (tid < 0) return;
  auto& start = residency_start_[static_cast<std::size_t>(tid)];
  if (start == kNeverCycle) return;
  std::ostringstream args;
  args << "{\"commits\": " << commits_in_episode_[static_cast<std::size_t>(tid)]
       << "}";
  writer_.complete_event("resident", "residency", core_id_,
                         static_cast<u32>(tid), start,
                         cycle > start ? cycle - start : 1, args.str());
  start = kNeverCycle;
}

void PerfettoTracer::on_fetch(Cycle cycle, int tid, u64 /*pc*/,
                              const isa::Inst& /*inst*/) {
  open_residency(tid, cycle);
}

void PerfettoTracer::on_commit(Cycle cycle, int tid, u64 /*pc*/,
                               const isa::Inst& /*inst*/) {
  open_residency(tid, cycle);
  ++commits_in_episode_[static_cast<std::size_t>(tid)];
}

void PerfettoTracer::on_data_miss(Cycle cycle, int tid, u64 pc, Addr addr,
                                  Cycle ready) {
  open_residency(tid, cycle);
  std::ostringstream args;
  args << "{\"addr\": \"0x" << std::hex << addr << std::dec
       << "\", \"pc\": " << pc << "}";
  writer_.complete_event("dmiss", "mem", core_id_, miss_track(tid), cycle,
                         ready > cycle ? ready - cycle : 1, args.str());
}

void PerfettoTracer::on_context_switch(Cycle cycle, int from_tid, int to_tid,
                                       u64 /*resume_pc*/) {
  close_residency(from_tid, cycle);
  // The incoming thread's span opens at its first fetch/commit, so the
  // pipeline-refill gap shows up as empty track time.
  (void)to_tid;
}

void PerfettoTracer::on_mispredict(Cycle cycle, int tid, u64 /*pc*/,
                                   u64 /*actual*/) {
  writer_.instant_event("mispredict", "pipeline", core_id_,
                        static_cast<u32>(tid), cycle);
}

void PerfettoTracer::on_halt(Cycle cycle, int tid) {
  close_residency(tid, cycle);
  writer_.instant_event("halt", "pipeline", core_id_, static_cast<u32>(tid),
                        cycle);
}

void PerfettoTracer::on_reg_fill(Cycle cycle, int tid, u8 arch) {
  writer_.instant_event("fill x" + std::to_string(arch), "regcache", core_id_,
                        static_cast<u32>(tid), cycle);
}

void PerfettoTracer::on_reg_spill(Cycle cycle, int tid, u8 arch) {
  writer_.instant_event("spill x" + std::to_string(arch), "regcache",
                        core_id_, static_cast<u32>(tid), cycle);
}

void PerfettoTracer::on_rollback(Cycle cycle, int tid, u32 flushed) {
  writer_.instant_event("rollback x" + std::to_string(flushed), "regcache",
                        core_id_, static_cast<u32>(tid), cycle);
}

void PerfettoTracer::flush_open_spans(Cycle end_cycle) {
  for (std::size_t t = 0; t < residency_start_.size(); ++t) {
    close_residency(static_cast<int>(t), end_cycle);
  }
}

}  // namespace virec::cpu
