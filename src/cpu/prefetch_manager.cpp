#include "cpu/prefetch_manager.hpp"

#include <bit>

#include "isa/inst.hpp"

namespace virec::cpu {

namespace {
constexpr u32 kAllRegsMask = (1u << isa::kNumAllocatableRegs) - 1;
}

PrefetchManager::PrefetchManager(const CoreEnv& env, PrefetchMode mode)
    : ContextManager(env, mode == PrefetchMode::kFull ? "prefetch_full"
                                                      : "prefetch_exact"),
      mode_(mode),
      values_(env.num_threads),
      resident_(env.num_threads, 0),
      used_this_episode_(env.num_threads, 0),
      last_episode_used_(env.num_threads, 0),
      started_(env.num_threads, false),
      prefetch_ready_(env.num_threads, 0) {
  for (auto& v : values_) v.fill(0);
  c_rf_accesses_ = stats_.counter("rf_accesses",
                                  "register-file reads and writes");
  c_reg_fills_ = stats_.counter("reg_fills",
                                "registers filled from the backing store");
  c_reg_spills_ = stats_.counter("reg_spills",
                                 "registers spilled to the backing store");
  c_demand_fills_ = stats_.counter(
      "demand_fills", "fills issued on demand at first post-switch use");
  c_context_switches_ = stats_.counter("context_switches",
                                       "context switches handled");
  c_prefetches_ = stats_.counter("prefetches",
                                 "register prefetches issued at switch");
  c_prefetch_mispredicts_ = stats_.counter(
      "prefetch_mispredicts", "prefetched registers never used before evict");
}

Cycle PrefetchManager::transfer(int tid, RegMask mask, bool is_write,
                                Cycle now) {
  // The double-buffer datapath moves whole cache lines (8 registers per
  // 64 B line); only the lines covering the transfer set are touched.
  Cycle t = now;
  u32 line_mask = 0;
  for (u8 r = 0; r < isa::kNumAllocatableRegs; ++r) {
    if (!(mask & (1u << r))) continue;
    line_mask |= 1u << (r / 8);
    if (is_write) {
      backing_write(tid, r, values_[static_cast<std::size_t>(tid)][r]);
      ++*c_reg_spills_;
    } else {
      ++*c_reg_fills_;
    }
  }
  const Addr base = env_.ms->context_base(env_.core_id, static_cast<u32>(tid));
  for (u32 line = 0; line < 4; ++line) {
    if (!(line_mask & (1u << line))) continue;
    t = dcache().access(base + line * mem::kLineBytes, is_write, t).done;
  }
  // The system register line travels with every episode.
  t = dcache()
          .access(env_.ms->sysreg_addr(env_.core_id, static_cast<u32>(tid)),
                  is_write, t)
          .done;
  return t;
}

PrefetchManager::RegMask PrefetchManager::predicted_set(int tid) const {
  if (mode_ == PrefetchMode::kFull) return kAllRegsMask;
  const RegMask hist = last_episode_used_[static_cast<std::size_t>(tid)];
  return hist != 0 ? hist : kAllRegsMask;  // first episode: whole context
}

Cycle PrefetchManager::on_thread_start(int tid, Cycle now) {
  auto& vals = values_[static_cast<std::size_t>(tid)];
  for (u8 r = 0; r < isa::kNumAllocatableRegs; ++r) {
    vals[r] = backing_read(tid, r);
  }
  started_[static_cast<std::size_t>(tid)] = true;
  if (prefetched_tid_ < 0) {
    // Very first thread: demand-load its context.
    prefetched_tid_ = tid;
    resident_[static_cast<std::size_t>(tid)] = predicted_set(tid);
    prefetch_ready_[static_cast<std::size_t>(tid)] =
        transfer(tid, predicted_set(tid), /*is_write=*/false, now);
    return prefetch_ready_[static_cast<std::size_t>(tid)];
  }
  return now;
}

DecodeAccess PrefetchManager::on_decode(int tid, const isa::Inst& inst,
                                        Cycle now) {
  DecodeAccess acc;
  acc.ready = now;
  const isa::RegList regs = isa::all_regs(inst);
  RegMask& resident = resident_[static_cast<std::size_t>(tid)];
  RegMask& used = used_this_episode_[static_cast<std::size_t>(tid)];
  ++*c_rf_accesses_;
  for (u32 i = 0; i < regs.count; ++i) {
    const u8 r = regs.regs[i];
    used |= 1u << r;
    if (!(resident & (1u << r))) {
      // Oracle miss: demand-fetch with a decode stall.
      const Addr addr =
          env_.ms->reg_addr(env_.core_id, static_cast<u32>(tid), r);
      acc.ready = dcache().access(addr, /*is_write=*/false, acc.ready).done;
      resident |= 1u << r;
      acc.hit = false;
      ++acc.fills;
      ++*c_demand_fills_;
    }
  }
  return acc;
}

Cycle PrefetchManager::on_context_switch(int from_tid, int to_tid,
                                         int predicted_next, Cycle now) {
  const auto to = static_cast<std::size_t>(to_tid);
  ++*c_context_switches_;

  // Close the outgoing episode: remember its used set, write back the
  // registers the strategy must store (full: all; exact: all used).
  // There is no outgoing episode on the first schedule after reset or
  // an idle period (from_tid < 0) — indexing the per-thread arrays
  // with -1 read and spilled out-of-bounds memory.
  Cycle spill_done = now;
  if (from_tid >= 0) {
    const auto from = static_cast<std::size_t>(from_tid);
    const RegMask spill_mask =
        mode_ == PrefetchMode::kFull ? kAllRegsMask : used_this_episode_[from];
    spill_done = transfer(from_tid, spill_mask, /*is_write=*/true, now);
    last_episode_used_[from] = used_this_episode_[from];
    used_this_episode_[from] = 0;
    resident_[from] = 0;
  }

  // The incoming thread should already be prefetched; a wrong
  // prediction degenerates to a demand fetch here.
  Cycle ready;
  if (prefetched_tid_ == to_tid) {
    ready = std::max(now, prefetch_ready_[to]);
  } else {
    ++*c_prefetch_mispredicts_;
    resident_[to] = predicted_set(to_tid);
    ready = transfer(to_tid, resident_[to], /*is_write=*/false, spill_done);
  }

  // Kick the next prefetch (scheduler-provided prediction) to overlap
  // with the incoming thread's execution.
  int next = predicted_next;
  if (next == to_tid ||
      (next >= 0 && !started_[static_cast<std::size_t>(next)])) {
    next = -1;
  }
  if (next >= 0) {
    const auto nx = static_cast<std::size_t>(next);
    resident_[nx] = predicted_set(next);
    prefetch_ready_[nx] =
        transfer(next, resident_[nx], /*is_write=*/false,
                 std::max(spill_done, ready));
    prefetched_tid_ = next;
    ++*c_prefetches_;
  } else {
    prefetched_tid_ = -1;
  }
  return ready;
}

void PrefetchManager::on_thread_halt(int tid, Cycle now) {
  (void)now;
  for (u8 r = 0; r < isa::kNumAllocatableRegs; ++r) {
    backing_write(tid, r, values_[static_cast<std::size_t>(tid)][r]);
  }
  started_[static_cast<std::size_t>(tid)] = false;
}

void PrefetchManager::warm_transfer(int tid, RegMask mask, bool is_write,
                                    Cycle warm_now) {
  u32 line_mask = 0;
  for (u8 r = 0; r < isa::kNumAllocatableRegs; ++r) {
    if (!(mask & (1u << r))) continue;
    line_mask |= 1u << (r / 8);
    if (is_write) {
      backing_write(tid, r, values_[static_cast<std::size_t>(tid)][r]);
    }
  }
  const Addr base = env_.ms->context_base(env_.core_id, static_cast<u32>(tid));
  for (u32 line = 0; line < 4; ++line) {
    if (!(line_mask & (1u << line))) continue;
    dcache().warm_access(base + line * mem::kLineBytes, is_write, warm_now);
  }
  dcache().warm_access(env_.ms->sysreg_addr(env_.core_id,
                                            static_cast<u32>(tid)),
                       is_write, warm_now);
}

void PrefetchManager::warm_thread_start(int tid, Cycle warm_now) {
  // read_reg/write_reg always use values_, so the functional tier must
  // perform the backing -> values_ copy on_thread_start would have
  // done before the thread's first instruction.
  auto& vals = values_[static_cast<std::size_t>(tid)];
  for (u8 r = 0; r < isa::kNumAllocatableRegs; ++r) {
    vals[r] = backing_read(tid, r);
  }
  started_[static_cast<std::size_t>(tid)] = true;
  if (prefetched_tid_ < 0) {
    prefetched_tid_ = tid;
    resident_[static_cast<std::size_t>(tid)] = predicted_set(tid);
    warm_transfer(tid, predicted_set(tid), /*is_write=*/false, warm_now);
  }
}

void PrefetchManager::warm_decode(int tid, const isa::Inst& inst,
                                  Cycle warm_now) {
  const isa::RegList regs = isa::all_regs(inst);
  RegMask& resident = resident_[static_cast<std::size_t>(tid)];
  RegMask& used = used_this_episode_[static_cast<std::size_t>(tid)];
  for (u32 i = 0; i < regs.count; ++i) {
    const u8 r = regs.regs[i];
    used |= 1u << r;
    if (!(resident & (1u << r))) {
      dcache().warm_access(
          env_.ms->reg_addr(env_.core_id, static_cast<u32>(tid), r),
          /*is_write=*/false, warm_now);
      resident |= 1u << r;
    }
  }
}

void PrefetchManager::warm_context_switch(int from_tid, int to_tid,
                                          int predicted_next, Cycle warm_now) {
  const auto from = static_cast<std::size_t>(from_tid);
  const auto to = static_cast<std::size_t>(to_tid);
  const RegMask spill_mask =
      mode_ == PrefetchMode::kFull ? kAllRegsMask : used_this_episode_[from];
  warm_transfer(from_tid, spill_mask, /*is_write=*/true, warm_now);
  last_episode_used_[from] = used_this_episode_[from];
  used_this_episode_[from] = 0;
  resident_[from] = 0;

  if (prefetched_tid_ != to_tid) {
    resident_[to] = predicted_set(to_tid);
    warm_transfer(to_tid, resident_[to], /*is_write=*/false, warm_now);
  }

  int next = predicted_next;
  if (next == to_tid ||
      (next >= 0 && !started_[static_cast<std::size_t>(next)])) {
    next = -1;
  }
  if (next >= 0) {
    const auto nx = static_cast<std::size_t>(next);
    resident_[nx] = predicted_set(next);
    warm_transfer(next, resident_[nx], /*is_write=*/false, warm_now);
    prefetched_tid_ = next;
  } else {
    prefetched_tid_ = -1;
  }
}

void PrefetchManager::warm_thread_halt(int tid, Cycle /*warm_now*/) {
  for (u8 r = 0; r < isa::kNumAllocatableRegs; ++r) {
    backing_write(tid, r, values_[static_cast<std::size_t>(tid)][r]);
  }
  started_[static_cast<std::size_t>(tid)] = false;
}

u32 PrefetchManager::physical_regs() const {
  return 2 * isa::kNumArchRegs;  // double buffer
}

u64 PrefetchManager::read_reg(int tid, isa::RegId reg) {
  return values_[static_cast<std::size_t>(tid)][reg];
}

void PrefetchManager::write_reg(int tid, isa::RegId reg, u64 value) {
  values_[static_cast<std::size_t>(tid)][reg] = value;
}

void PrefetchManager::save_state(ckpt::Encoder& enc) const {
  ContextManager::save_state(enc);
  for (const auto& regs : values_) {
    for (u64 v : regs) enc.put_u64(v);
  }
  for (RegMask m : resident_) enc.put_u32(m);
  for (RegMask m : used_this_episode_) enc.put_u32(m);
  for (RegMask m : last_episode_used_) enc.put_u32(m);
  for (bool s : started_) enc.put_bool(s);
  enc.put_cycle_vec(prefetch_ready_);
  enc.put_i64(prefetched_tid_);
}

void PrefetchManager::restore_state(ckpt::Decoder& dec) {
  ContextManager::restore_state(dec);
  for (auto& regs : values_) {
    for (u64& v : regs) v = dec.get_u64();
  }
  for (RegMask& m : resident_) m = dec.get_u32();
  for (RegMask& m : used_this_episode_) m = dec.get_u32();
  for (RegMask& m : last_episode_used_) m = dec.get_u32();
  for (std::size_t i = 0; i < started_.size(); ++i) started_[i] = dec.get_bool();
  const std::vector<Cycle> ready = dec.get_cycle_vec();
  if (ready.size() != prefetch_ready_.size()) {
    throw ckpt::CkptError("PrefetchManager: snapshot thread count mismatch");
  }
  prefetch_ready_ = ready;
  prefetched_tid_ = static_cast<int>(dec.get_i64());
}

}  // namespace virec::cpu
