#include "cpu/banked_manager.hpp"

#include <string>

#include "check/check.hpp"

namespace virec::cpu {

namespace {

std::string bank_access_msg(int tid, isa::RegId reg, u32 num_threads) {
  return "banked RF access (tid " + std::to_string(tid) + ", x" +
         std::to_string(reg) + ") outside the " +
         std::to_string(num_threads) + "-bank * " +
         std::to_string(isa::kNumAllocatableRegs) + "-register file";
}

}  // namespace

BankedManager::BankedManager(const CoreEnv& env)
    : ContextManager(env, "banked"), banks_(env.num_threads) {
  for (auto& bank : banks_) bank.fill(0);
  c_rf_accesses_ = stats_.counter("rf_accesses",
                                  "register-file reads and writes");
  c_context_loads_ = stats_.counter(
      "context_loads", "bank activations on context switch");
}

Cycle BankedManager::on_thread_start(int tid, Cycle now) {
  // Fetch the offloaded context (4 GPR lines + 1 sysreg line) from the
  // reserved region into the bank through the dcache.
  const Addr base = env_.ms->context_base(env_.core_id, static_cast<u32>(tid));
  Cycle ready = now;
  for (u32 line = 0; line < 5; ++line) {
    const auto acc = dcache().access(base + line * mem::kLineBytes,
                                     /*is_write=*/false, now,
                                     /*reg_region=*/false);
    ready = std::max(ready, acc.done);
  }
  for (u8 r = 0; r < isa::kNumAllocatableRegs; ++r) {
    banks_[static_cast<std::size_t>(tid)][r] = backing_read(tid, r);
  }
  ++*c_context_loads_;
  return ready;
}

DecodeAccess BankedManager::on_decode(int tid, const isa::Inst& inst,
                                      Cycle now) {
  (void)tid;
  (void)inst;
  ++*c_rf_accesses_;
  return DecodeAccess{.ready = now, .fills = 0, .spills = 0, .hit = true};
}

void BankedManager::on_thread_halt(int tid, Cycle now) {
  (void)now;
  for (u8 r = 0; r < isa::kNumAllocatableRegs; ++r) {
    backing_write(tid, r, banks_[static_cast<std::size_t>(tid)][r]);
  }
}

void BankedManager::warm_thread_start(int tid, Cycle warm_now) {
  // read_reg/write_reg serve from the bank, so the functional tier must
  // perform the backing -> bank copy on_thread_start would have done.
  const Addr base = env_.ms->context_base(env_.core_id, static_cast<u32>(tid));
  for (u32 line = 0; line < 5; ++line) {
    dcache().warm_access(base + line * mem::kLineBytes, /*is_write=*/false,
                         warm_now);
  }
  for (u8 r = 0; r < isa::kNumAllocatableRegs; ++r) {
    banks_[static_cast<std::size_t>(tid)][r] = backing_read(tid, r);
  }
}

void BankedManager::warm_thread_halt(int tid, Cycle /*warm_now*/) {
  for (u8 r = 0; r < isa::kNumAllocatableRegs; ++r) {
    backing_write(tid, r, banks_[static_cast<std::size_t>(tid)][r]);
  }
}

u32 BankedManager::physical_regs() const {
  return env_.num_threads * isa::kNumArchRegs;
}

u64 BankedManager::read_reg(int tid, isa::RegId reg) {
  // Bank-ownership invariant: a thread may only touch its own bank, and
  // only allocatable registers (xzr never reaches the RF).
  VIREC_CHECK(check_,
              tid >= 0 && static_cast<u32>(tid) < env_.num_threads &&
                  reg < isa::kNumAllocatableRegs,
              bank_access_msg(tid, reg, env_.num_threads));
  return banks_[static_cast<std::size_t>(tid)][reg];
}

void BankedManager::write_reg(int tid, isa::RegId reg, u64 value) {
  VIREC_CHECK(check_,
              tid >= 0 && static_cast<u32>(tid) < env_.num_threads &&
                  reg < isa::kNumAllocatableRegs,
              bank_access_msg(tid, reg, env_.num_threads));
  banks_[static_cast<std::size_t>(tid)][reg] = value;
}

void BankedManager::save_state(ckpt::Encoder& enc) const {
  ContextManager::save_state(enc);
  for (const auto& bank : banks_) {
    for (u64 v : bank) enc.put_u64(v);
  }
}

void BankedManager::restore_state(ckpt::Decoder& dec) {
  ContextManager::restore_state(dec);
  for (auto& bank : banks_) {
    for (u64& v : bank) v = dec.get_u64();
  }
}

}  // namespace virec::cpu
