#include "cpu/trace.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "isa/disasm.hpp"

namespace virec::cpu {

void TextTracer::line(Cycle cycle, int tid, const std::string& body) {
  os_ << '[' << std::setw(7) << cycle << "] t" << tid << ' ' << body << '\n';
}

void TextTracer::on_fetch(Cycle cycle, int tid, u64 pc,
                          const isa::Inst& inst) {
  if (!trace_fetch_) return;
  std::ostringstream body;
  body << "fetch  @" << pc << "\t" << isa::disasm(inst);
  line(cycle, tid, body.str());
}

void TextTracer::on_commit(Cycle cycle, int tid, u64 pc,
                           const isa::Inst& inst) {
  std::ostringstream body;
  body << "commit @" << pc << "\t" << isa::disasm(inst);
  line(cycle, tid, body.str());
}

void TextTracer::on_data_miss(Cycle cycle, int tid, u64 pc, Addr addr,
                              Cycle ready) {
  std::ostringstream body;
  body << "dmiss  @" << pc << "\taddr=0x" << std::hex << addr << std::dec
       << " ready=" << ready;
  line(cycle, tid, body.str());
}

void TextTracer::on_context_switch(Cycle cycle, int from_tid, int to_tid,
                                   u64 resume_pc) {
  std::ostringstream body;
  body << "==> t" << to_tid << " switch (resume@" << resume_pc << ")";
  line(cycle, from_tid, body.str());
}

void TextTracer::on_mispredict(Cycle cycle, int tid, u64 pc, u64 actual) {
  std::ostringstream body;
  body << "redirect @" << pc << " -> @" << actual;
  line(cycle, tid, body.str());
}

void TextTracer::on_halt(Cycle cycle, int tid) { line(cycle, tid, "halt"); }

}  // namespace virec::cpu
