#include "cpu/ooo_core.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "check/check.hpp"

namespace virec::cpu {

OooCore::OooCore(const OooCoreConfig& config, mem::MemorySystem& ms,
                 u32 core_id, const kasm::Program& program)
    : config_(config),
      ms_(ms),
      core_id_(core_id),
      program_(program),
      stats_("ooo"),
      acct_(stats_, /*num_threads=*/1) {
  program_.validate();
  stats_.describe("cycles", "total simulated cycles (time of the last commit)");
  stats_.describe("instructions", "instructions committed by this core");
  stats_.describe("load_hits", "loads that hit in the data cache");
  stats_.describe("load_misses", "loads that missed in the data cache");
  stats_.describe("ret_redirects",
                  "late front-end redirects through the link register");
}

Cycle OooCore::run(u64 entry_pc) {
  // Coarse cycle accounting for the comparator: the commit stream is
  // monotone, so every cycle up to the final commit is attributed by
  // walking commit-time advances — one commit cycle per advance, the
  // remaining gap charged to the committing instruction's dominant
  // cause (dcache-missing load -> mem_data, otherwise pipeline; cycles
  // before the first commit -> frontend_wait). Sums to cycles() by
  // construction. No per-stall precision is attempted here; the CGMT
  // core carries the exact, invariant-checked stack.
  const double acct_base = acct_.total();
  // Per-architectural-register availability time (renaming assumed to
  // always find a free physical register: the 384-entry file of the N1
  // configuration never limits these kernels).
  std::array<Cycle, isa::kNumArchRegs> reg_ready{};
  Cycle flags_ready = 0;

  // Ring buffers of commit/complete times for structural resources.
  std::vector<Cycle> rob(config_.rob_entries, 0);
  std::vector<Cycle> lq(config_.lq_entries, 0);
  std::vector<Cycle> sq(config_.sq_entries, 0);
  u64 rob_head = 0, lq_head = 0, sq_head = 0;

  u64 pc = entry_pc;
  u8 nzcv = 0;
  u64 fetched = 0;       // for fetch-width modelling
  Cycle fetch_cycle = 0;
  Cycle prev_commit = 0;
  u64 commit_slot = 0;   // commits per cycle limiter
  Cycle redirect_at = 0; // front-end restart after (modelled) redirects

  instructions_ = 0;
  last_commit_ = 0;

  while (true) {
    if (instructions_ >= config_.max_instructions) {
      throw std::runtime_error("OooCore: max_instructions exceeded");
    }
    const isa::Inst inst = program_.at(pc);

    // --- Front end: width instructions per cycle, after redirects.
    if (fetched % config_.width == 0 && fetched != 0) ++fetch_cycle;
    fetch_cycle = std::max(fetch_cycle, redirect_at);
    ++fetched;

    // --- Dispatch: needs a ROB slot.
    const Cycle rob_free = rob[rob_head % config_.rob_entries];
    Cycle dispatch = std::max<Cycle>(fetch_cycle + 1, rob_free);

    // --- Operand readiness.
    Cycle ready = dispatch;
    const isa::RegList srcs = isa::src_regs(inst);
    for (u32 i = 0; i < srcs.count; ++i) {
      ready = std::max(ready, reg_ready[srcs.regs[i]]);
    }
    if (isa::reads_flags(inst.op)) ready = std::max(ready, flags_ready);

    // --- Execute.
    Cycle complete;
    bool load_missed = false;
    if (isa::is_load(inst.op)) {
      const Cycle lq_free = lq[lq_head % config_.lq_entries];
      const Cycle issue = std::max(ready + 1, lq_free);  // +1 AGU
      const Addr addr = isa::compute_mem_addr(inst, 0, rf_);
      const auto acc =
          ms_.dcache(core_id_).access(addr, /*is_write=*/false, issue);
      complete = acc.done;
      lq[lq_head % config_.lq_entries] = complete;
      ++lq_head;
      load_missed = !acc.hit;
      stats_.inc(acc.hit ? "load_hits" : "load_misses");
    } else if (isa::is_store(inst.op)) {
      const Cycle sq_free = sq[sq_head % config_.sq_entries];
      const Cycle issue = std::max(ready + 1, sq_free);
      const Addr addr = isa::compute_mem_addr(inst, 0, rf_);
      // Stores retire post-commit; the SQ slot is held until the
      // dcache write completes.
      const auto acc =
          ms_.dcache(core_id_).access(addr, /*is_write=*/true, issue);
      sq[sq_head % config_.sq_entries] = acc.done;
      ++sq_head;
      complete = issue + 1;  // store data/address ready
    } else {
      complete = ready + isa::op_latency(inst.op);
    }

    // --- Writeback into the dependence table. For loads with base
    // writeback the address update is a 1-cycle ALU micro-op: only the
    // data register waits for memory.
    const isa::RegList dsts = isa::dst_regs(inst);
    for (u32 i = 0; i < dsts.count; ++i) {
      if (isa::is_mem(inst.op) && dsts.regs[i] == inst.rn &&
          (inst.mem_mode == isa::MemMode::kPreIndex ||
           inst.mem_mode == isa::MemMode::kPostIndex)) {
        reg_ready[dsts.regs[i]] = ready + 1;
      } else {
        reg_ready[dsts.regs[i]] = complete;
      }
    }
    if (isa::writes_flags(inst.op)) flags_ready = complete;

    // --- In-order commit, width per cycle.
    const Cycle commit_before = prev_commit;
    Cycle commit = std::max(complete, prev_commit);
    if (commit == prev_commit) {
      if (++commit_slot >= config_.width) {
        ++commit;
        commit_slot = 0;
      }
    } else {
      commit_slot = 1;
    }
    prev_commit = commit;
    if (commit > commit_before) {
      acct_.charge(CycleBucket::kCommit, 0);
      const Cycle gap = commit - commit_before;
      if (gap > 1) {
        const CycleBucket stall =
            instructions_ == 0 ? CycleBucket::kFrontendWait
            : load_missed      ? CycleBucket::kMemData
                               : CycleBucket::kPipeline;
        acct_.charge(stall, 0, static_cast<double>(gap - 1));
      }
    }
    rob[rob_head % config_.rob_entries] = commit;
    ++rob_head;
    last_commit_ = std::max(last_commit_, commit);
    ++instructions_;

    // --- Architectural execution (program order).
    if (check_ != nullptr) {
      check_->pre_commit(core_id_, 0, inst, pc, commit, rf_, nzcv);
    }
    const isa::ExecResult res =
        isa::execute(inst, pc, 0, rf_, ms_.memory(), nzcv);
    if (check_ != nullptr) {
      check_->post_commit(core_id_, 0, inst, pc, commit, rf_, nzcv, res);
    }
    if (res.halted) break;
    if (res.taken_branch && inst.op == isa::Op::kRet) {
      // Returns through the link register resolve late.
      redirect_at = complete + config_.mispredict_penalty;
      stats_.inc("ret_redirects");
    }
    pc = res.next_pc;
  }
  stats_.set("cycles", static_cast<double>(last_commit_));
  stats_.set("instructions", static_cast<double>(instructions_));
  VIREC_CHECK(check_,
              acct_.total() - acct_base == static_cast<double>(last_commit_),
              "OooCore cycle accounting must close");
  return last_commit_;
}

}  // namespace virec::cpu
