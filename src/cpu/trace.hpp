// Pipeline event tracing. A TraceSink receives structured events from
// a CgmtCore (fetches, commits, register fills, context switches) and
// renders them; the default TextTracer prints a compact one-line-per-
// event log that reads like a classic pipeline trace:
//
//   [    124] t0 commit @7   ldr x5, [x1, x4, lsl #3]
//   [    126] t0 dmiss  @8   addr=0x28001c0 ready=193
//   [    128] t0 ==> t1 switch (resume@7)
//
// Tracing is opt-in (CgmtCore::set_tracer) and has zero overhead when
// disabled.
#pragma once

#include <iosfwd>
#include <string>

#include "common/types.hpp"
#include "isa/inst.hpp"

namespace virec::cpu {

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_fetch(Cycle cycle, int tid, u64 pc, const isa::Inst& inst) = 0;
  virtual void on_commit(Cycle cycle, int tid, u64 pc,
                         const isa::Inst& inst) = 0;
  virtual void on_data_miss(Cycle cycle, int tid, u64 pc, Addr addr,
                            Cycle ready) = 0;
  virtual void on_context_switch(Cycle cycle, int from_tid, int to_tid,
                                 u64 resume_pc) = 0;
  virtual void on_mispredict(Cycle cycle, int tid, u64 pc, u64 actual) = 0;
  virtual void on_halt(Cycle cycle, int tid) = 0;

  // Register-cache traffic (emitted by context managers that support a
  // tracer, e.g. core::ViReCManager). Default no-ops keep sinks that
  // only care about pipeline events small.
  virtual void on_reg_fill(Cycle cycle, int tid, u8 arch) {
    (void)cycle; (void)tid; (void)arch;
  }
  virtual void on_reg_spill(Cycle cycle, int tid, u8 arch) {
    (void)cycle; (void)tid; (void)arch;
  }
  /// @p flushed entries had their C bits reset by a context-switch flush.
  virtual void on_rollback(Cycle cycle, int tid, u32 flushed) {
    (void)cycle; (void)tid; (void)flushed;
  }
};

/// Renders events as text lines to an ostream.
class TextTracer final : public TraceSink {
 public:
  explicit TextTracer(std::ostream& os) : os_(os) {}

  void on_fetch(Cycle cycle, int tid, u64 pc, const isa::Inst& inst) override;
  void on_commit(Cycle cycle, int tid, u64 pc,
                 const isa::Inst& inst) override;
  void on_data_miss(Cycle cycle, int tid, u64 pc, Addr addr,
                    Cycle ready) override;
  void on_context_switch(Cycle cycle, int from_tid, int to_tid,
                         u64 resume_pc) override;
  void on_mispredict(Cycle cycle, int tid, u64 pc, u64 actual) override;
  void on_halt(Cycle cycle, int tid) override;

  /// Fetch events are noisy; off by default.
  void set_trace_fetch(bool enable) { trace_fetch_ = enable; }

 private:
  void line(Cycle cycle, int tid, const std::string& body);

  std::ostream& os_;
  bool trace_fetch_ = false;
};

/// Counts events (used by tests and for cheap summaries).
class CountingTracer final : public TraceSink {
 public:
  void on_fetch(Cycle, int, u64, const isa::Inst&) override { ++fetches; }
  void on_commit(Cycle, int, u64, const isa::Inst&) override { ++commits; }
  void on_data_miss(Cycle, int, u64, Addr, Cycle) override { ++data_misses; }
  void on_context_switch(Cycle, int, int, u64) override { ++switches; }
  void on_mispredict(Cycle, int, u64, u64) override { ++mispredicts; }
  void on_halt(Cycle, int) override { ++halts; }
  void on_reg_fill(Cycle, int, u8) override { ++reg_fills; }
  void on_reg_spill(Cycle, int, u8) override { ++reg_spills; }
  void on_rollback(Cycle, int, u32 flushed) override {
    rollbacks += flushed;
  }

  u64 fetches = 0;
  u64 commits = 0;
  u64 data_misses = 0;
  u64 switches = 0;
  u64 mispredicts = 0;
  u64 halts = 0;
  u64 reg_fills = 0;
  u64 reg_spills = 0;
  u64 rollbacks = 0;
};

}  // namespace virec::cpu
