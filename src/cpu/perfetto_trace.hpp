// Chrome/Perfetto trace-event JSON sink for pipeline traces. The
// output is a JSON array of trace events (the legacy "JSON Array
// Format" every Chrome-tracing consumer accepts) that loads directly
// in ui.perfetto.dev or chrome://tracing:
//
//  * one process per core (pid = core id);
//  * one track per hardware thread (tid = thread id) carrying
//    context-residency spans — the intervals a thread occupies the
//    pipeline between context switches;
//  * a parallel "tN misses" track per thread carrying dcache
//    miss-stall spans (issue cycle -> data-ready cycle);
//  * instant events for register fills, spills and rollback-queue
//    flushes (from context managers that report them, e.g.
//    core::ViReCManager).
//
// Timestamps are simulated cycles reported as microseconds, so one
// trace-viewer microsecond == one core cycle.
//
// A PerfettoTraceWriter owns the output stream and the JSON framing;
// one PerfettoTracer per core adapts TraceSink events onto it. Call
// finish() (or let the writer destruct) to emit valid JSON.
#pragma once

#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "cpu/trace.hpp"

namespace virec::cpu {

/// Serialises trace events into one shared JSON array. Thread-safe:
/// every per-core PerfettoTracer of a PDES run (sim::System::set_pdes)
/// funnels into one writer from its partition's worker thread, so each
/// emitting call serialises the whole event under an internal mutex.
class PerfettoTraceWriter {
 public:
  explicit PerfettoTraceWriter(std::ostream& os);
  ~PerfettoTraceWriter();

  PerfettoTraceWriter(const PerfettoTraceWriter&) = delete;
  PerfettoTraceWriter& operator=(const PerfettoTraceWriter&) = delete;

  /// Name the process @p pid (core) in the viewer.
  void process_name(u32 pid, const std::string& name);
  /// Name track @p tid of process @p pid.
  void thread_name(u32 pid, u32 tid, const std::string& name);

  /// Complete ("X") span [ts, ts+dur) on (pid, tid).
  void complete_event(const std::string& name, const char* category, u32 pid,
                      u32 tid, Cycle ts, Cycle dur,
                      const std::string& args_json = "");
  /// Thread-scoped instant ("i") event at @p ts.
  void instant_event(const std::string& name, const char* category, u32 pid,
                     u32 tid, Cycle ts);
  /// Counter ("C") sample at @p ts. @p args_json carries the series
  /// values, e.g. {"value": 3} or {"mem": 12, "switch": 4} for a
  /// stacked multi-series counter track.
  void counter_event(const std::string& name, u32 pid, Cycle ts,
                     const std::string& args_json);

  /// Close the JSON array; further events are dropped. Idempotent.
  void finish();
  u64 events_written() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return events_;
  }

 private:
  /// Emits the shared event prelude; callers hold mu_.
  void event_prefix(const char* ph, const std::string& name,
                    const char* category, u32 pid, u32 tid, Cycle ts);

  std::ostream& os_;
  mutable std::mutex mu_;
  bool first_ = true;
  bool finished_ = false;
  u64 events_ = 0;
};

/// TraceSink adapter for one core writing into a PerfettoTraceWriter.
class PerfettoTracer final : public TraceSink {
 public:
  /// @p num_threads sizes the per-thread residency bookkeeping.
  PerfettoTracer(PerfettoTraceWriter& writer, u32 core_id, u32 num_threads);

  void on_fetch(Cycle cycle, int tid, u64 pc, const isa::Inst& inst) override;
  void on_commit(Cycle cycle, int tid, u64 pc,
                 const isa::Inst& inst) override;
  void on_data_miss(Cycle cycle, int tid, u64 pc, Addr addr,
                    Cycle ready) override;
  void on_context_switch(Cycle cycle, int from_tid, int to_tid,
                         u64 resume_pc) override;
  void on_mispredict(Cycle cycle, int tid, u64 pc, u64 actual) override;
  void on_halt(Cycle cycle, int tid) override;
  void on_reg_fill(Cycle cycle, int tid, u8 arch) override;
  void on_reg_spill(Cycle cycle, int tid, u8 arch) override;
  void on_rollback(Cycle cycle, int tid, u32 flushed) override;

  /// Close any open residency span at @p end_cycle (call after the
  /// run; finishing the writer without this drops in-flight spans).
  void flush_open_spans(Cycle end_cycle);

 private:
  /// tid of the miss-stall track that shadows thread @p tid.
  u32 miss_track(int tid) const;
  void open_residency(int tid, Cycle cycle);
  void close_residency(int tid, Cycle cycle);

  PerfettoTraceWriter& writer_;
  u32 core_id_;
  // Residency span start per thread; kNeverCycle = no open span.
  std::vector<Cycle> residency_start_;
  std::vector<u64> commits_in_episode_;
};

}  // namespace virec::cpu
