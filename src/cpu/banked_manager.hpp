// Banked register file (Figure 3(b) of the paper): one full 32-entry
// bank per hardware thread. Every decode access hits; the cost is area
// (banks * 32 registers) and a hard cap on thread count. The initial
// offloaded context is fetched from the reserved memory region once,
// when the thread starts.
#pragma once

#include <vector>

#include "cpu/context_manager.hpp"

namespace virec::cpu {

class BankedManager final : public ContextManager {
 public:
  explicit BankedManager(const CoreEnv& env);

  Cycle on_thread_start(int tid, Cycle now) override;
  DecodeAccess on_decode(int tid, const isa::Inst& inst, Cycle now) override;
  void on_thread_halt(int tid, Cycle now) override;
  void warm_thread_start(int tid, Cycle warm_now) override;
  void warm_thread_halt(int tid, Cycle warm_now) override;
  u32 physical_regs() const override;

  // RegisterFileIO.
  u64 read_reg(int tid, isa::RegId reg) override;
  void write_reg(int tid, isa::RegId reg, u64 value) override;

  void save_state(ckpt::Encoder& enc) const override;
  void restore_state(ckpt::Decoder& dec) override;

 private:
  // banks_[tid][arch]
  std::vector<std::array<u64, isa::kNumAllocatableRegs>> banks_;
  // Hot-path counter handles (owned by stats_).
  double* c_rf_accesses_ = nullptr;
  double* c_context_loads_ = nullptr;
};

}  // namespace virec::cpu
