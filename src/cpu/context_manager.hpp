// Register context management interface for the CGMT pipeline.
//
// A ContextManager owns the storage for thread register contexts and
// answers the pipeline's timing questions:
//  * on_decode  — instruction entered the decode stage; make its
//                 register operands available and report when.
//  * on_commit  — instruction committed (drives commit/C-bit state).
//  * on_context_switch — the core flushed the pipeline and is
//                 switching threads; report when the new thread may
//                 fetch (sysreg buffers, bank swaps, save/restore...).
//  * switch_allowed — CSL masking input (e.g. BSI fill in flight).
//
// It also implements isa::RegisterFileIO so committed instructions read
// and write functional register values through whatever storage the
// scheme uses (banks, a cached physical RF + backing memory, ...).
//
// Implementations: BankedManager, SoftwareManager, PrefetchManager
// (this directory) and core::ViReCManager / core::make_nsf_manager (the
// paper's contribution and the NSF prior-work baseline).
#pragma once

#include <memory>

#include "common/stats.hpp"
#include "isa/semantics.hpp"
#include "mem/memory_system.hpp"

namespace virec::check {
class CheckContext;
}  // namespace virec::check

namespace virec::cpu {

class TraceSink;

/// Environment handed to a context manager: which core it serves, how
/// many thread contexts it manages, and the memory system that holds
/// the backing store.
struct CoreEnv {
  u32 core_id = 0;
  u32 num_threads = 1;
  mem::MemorySystem* ms = nullptr;
};

/// Timing result of a decode-stage register access.
struct DecodeAccess {
  Cycle ready = 0;  ///< cycle when all operands are present
  u32 fills = 0;    ///< registers fetched from the backing store
  u32 spills = 0;   ///< dirty registers written back
  bool hit = true;  ///< no fill was needed
};

class ContextManager : public isa::RegisterFileIO {
 public:
  explicit ContextManager(const CoreEnv& env, const char* stat_prefix);
  ~ContextManager() override = default;

  ContextManager(const ContextManager&) = delete;
  ContextManager& operator=(const ContextManager&) = delete;

  // --- pipeline timing hooks ---

  /// Thread @p tid was offloaded; returns the cycle at which it may
  /// start fetching (initial context transfer, if the scheme pays one).
  virtual Cycle on_thread_start(int tid, Cycle now) {
    (void)tid;
    return now;
  }

  /// Instruction enters decode at @p now.
  virtual DecodeAccess on_decode(int tid, const isa::Inst& inst,
                                 Cycle now) = 0;

  /// Instruction committed.
  virtual void on_commit(int tid, const isa::Inst& inst) {
    (void)tid;
    (void)inst;
  }

  /// Branch-misprediction flush: in-flight instructions of @p tid were
  /// discarded and will NOT be replayed (wrong path).
  virtual void on_mispredict_flush(int tid) { (void)tid; }

  /// Context switch from @p from_tid to @p to_tid after a pipeline
  /// flush at @p now; flushed instructions WILL be replayed.
  /// @p predicted_next is the scheduler's prediction of the thread that
  /// will run after @p to_tid (prefetch hint; -1 if none). Returns the
  /// cycle at which @p to_tid may fetch its first instruction.
  virtual Cycle on_context_switch(int from_tid, int to_tid, int predicted_next,
                                  Cycle now) {
    (void)from_tid;
    (void)to_tid;
    (void)predicted_next;
    return now;
  }

  /// CSL mask: false while the scheme must delay context switches
  /// (e.g. an outstanding BSI fill).
  virtual bool switch_allowed(Cycle now) const {
    (void)now;
    return true;
  }

  /// Earliest future cycle at which the scheme's autonomous timing
  /// state changes — in particular, the cycle at which a false
  /// switch_allowed() turns true again (kNeverCycle when nothing is
  /// scheduled). Between pipeline hooks, switch_allowed() must stay
  /// constant up to (but excluding) the returned cycle; this is what
  /// lets the core fast-forward masked-switch stalls in one jump.
  virtual Cycle next_event_cycle(Cycle now) const {
    (void)now;
    return kNeverCycle;
  }

  /// Thread halted; flush its dirty state to the backing store so the
  /// host can read results.
  virtual void on_thread_halt(int tid, Cycle now) {
    (void)tid;
    (void)now;
  }

  // --- functional fast-forward hooks (tiered simulation) ---
  //
  // The functional tier executes committed instructions without the
  // pipeline. The warm_* hooks mirror each timing hook's persistent
  // state effects — storage residency, episode masks, cache tags via
  // Cache::warm_access — at zero timing cost, so a later detailed
  // window starts against warm structures. They must keep read_reg /
  // write_reg architecturally correct for any thread the functional
  // tier runs; the default no-ops are only right for schemes whose
  // register accessors always reach canonical storage.

  /// Functional counterpart of on_thread_start: make @p tid's registers
  /// live through read_reg/write_reg (e.g. copy the backing store into
  /// the scheme's private storage) without charging transfer time.
  /// Called exactly once per thread, before its first functional
  /// instruction; the core marks the context launched so a later
  /// detailed switch-in does not replay on_thread_start over newer
  /// values.
  virtual void warm_thread_start(int tid, Cycle warm_now) {
    (void)tid;
    (void)warm_now;
  }

  /// Functional counterpart of on_decode (residency + cache warmth).
  virtual void warm_decode(int tid, const isa::Inst& inst, Cycle warm_now) {
    (void)tid;
    (void)inst;
    (void)warm_now;
  }

  /// Functional counterpart of on_context_switch.
  virtual void warm_context_switch(int from_tid, int to_tid,
                                   int predicted_next, Cycle warm_now) {
    (void)from_tid;
    (void)to_tid;
    (void)predicted_next;
    (void)warm_now;
  }

  /// Functional counterpart of on_thread_halt: flush dirty state to the
  /// backing store so the host can read results.
  virtual void warm_thread_halt(int tid, Cycle warm_now) {
    (void)tid;
    (void)warm_now;
  }

  /// Physical registers this scheme instantiates (area model input).
  virtual u32 physical_regs() const = 0;

  /// Attach a trace sink for register-traffic events (fills, spills,
  /// rollbacks). Schemes without such traffic ignore it.
  virtual void set_tracer(TraceSink* tracer) { (void)tracer; }

  /// Attach the check context (nullptr detaches). Schemes with
  /// structural invariants audit themselves against it on hot paths.
  virtual void set_check(const check::CheckContext* check) { check_ = check; }

  /// Checkpoint scheme state. The base handles the stat set; overrides
  /// must call the base first and then append their own state in the
  /// same order on both sides.
  virtual void save_state(ckpt::Encoder& enc) const { stats_.save_state(enc); }
  virtual void restore_state(ckpt::Decoder& dec) { stats_.restore_state(dec); }

  const StatSet& stats() const { return stats_; }
  StatSet& stats() { return stats_; }
  const CoreEnv& env() const { return env_; }

 protected:
  /// Functional access to the reserved backing region in memory.
  u64 backing_read(int tid, isa::RegId reg) const;
  void backing_write(int tid, isa::RegId reg, u64 value);

  mem::Cache& dcache() { return env_.ms->dcache(env_.core_id); }

  CoreEnv env_;
  StatSet stats_;
  /// Hard-invariant context; null or disabled when checking is off.
  const check::CheckContext* check_ = nullptr;
};

}  // namespace virec::cpu
