// Coarse-grain multithreaded in-order core (Section 3 of the paper).
//
// A 4-latch in-order pipeline (IF -> ID -> EX -> MEM, commit on leaving
// MEM) with BTFN static branch prediction. Architectural state mutates
// only at commit, so the CGMT context-switch flush (triggered by dcache
// data misses) can replay flushed instructions safely.
//
// Register storage is delegated to a ContextManager: decode-stage
// operand access timing, commit notifications and context-switch costs
// all flow through that interface, which is how the banked, software,
// prefetching and ViReC schemes plug into the same pipeline.
//
// Threading: a core and everything it owns (pipeline latches, context
// manager, store queue, its private dcache slice, stats) is
// single-threaded state. Under the parallel PDES run mode
// (sim/system.cpp) each core belongs to exactly one partition and is
// only ever stepped by that partition's worker thread; all
// cross-thread traffic goes through the PdesGateway below the private
// caches. Nothing in this class needs (or has) internal locking.
#pragma once

#include <string>
#include <vector>

#include "ckpt/serialize.hpp"
#include "common/cycle_account.hpp"
#include "cpu/context_manager.hpp"
#include "cpu/store_queue.hpp"
#include "cpu/trace.hpp"
#include "kasm/program.hpp"
#include "mem/cache.hpp"

namespace virec::check {
class CheckContext;
}  // namespace virec::check

namespace virec::cpu {

struct CgmtCoreConfig {
  u32 num_threads = 1;
  u32 sq_entries = 5;
  /// CGMT enable: switch threads on dcache data misses. With a single
  /// thread the core simply stalls on misses.
  bool switch_on_miss = true;
  /// Event-driven cycle skipping: run() fast-forwards provably quiet
  /// stretches (all threads blocked on memory, frontend waiting, CSL
  /// masks set) in one jump instead of stepping cycle by cycle. The
  /// skip is cycle-exact — every stat, sample and trace is bit
  /// identical to the stepped run — so this only trades simulator
  /// wall-clock. Disable (--no-skip) to force the stepped loop, e.g.
  /// when bisecting the simulator itself.
  bool skip = true;
  /// Hard guard against runaway simulations.
  u64 max_cycles = 4'000'000'000ull;
};

class CgmtCore {
 public:
  /// @p env.num_threads must equal @p config.num_threads.
  CgmtCore(const CgmtCoreConfig& config, const CoreEnv& env,
           ContextManager& rcm, const kasm::Program& program);

  /// Mark thread @p tid runnable. Its initial register context must
  /// already be present in the reserved backing region (see
  /// sim::System / offload). @p entry_pc is its start instruction.
  void start_thread(int tid, u64 entry_pc = 0);

  /// Advance one cycle.
  void step();

  /// Earliest cycle at which step() would do real work: move a latch,
  /// issue/commit an instruction, take a context switch, fetch, or
  /// react to returning data. Returns cycle() itself when the very
  /// next step is such work, and kNeverCycle when no future event
  /// exists (the core would spin to the watchdog). Every cycle from
  /// cycle() up to (but excluding) the returned value is "quiet": the
  /// stepped loop would only advance the clock and bump at most one
  /// stall counter, which is exactly what skip_to() replays in bulk.
  Cycle next_event_cycle() const;

  /// Fast-forward a quiet stretch: jump the core clock to @p target
  /// (cycle() < target <= next_event_cycle()) and charge the skipped
  /// span to the same stall counter the stepped loop would have
  /// incremented each cycle (idle / switch-masked / switch-no-target /
  /// frontend-wait). Bit-exact with respect to stepping: no other
  /// state changes during a quiet stretch.
  void skip_to(Cycle target);

  /// Cheap pre-filter for the skip path: true when the core is in a
  /// state that can begin a quiet stretch (an issued memory access
  /// still in flight, or an empty pipeline waiting on fetch / a
  /// scheduler candidate). False means the next step() very likely
  /// does real work, so callers step directly without paying for the
  /// full next_event_cycle() evaluation. Purely a performance hint:
  /// declining a possible skip is always bit-exact, because stepping
  /// through a quiet cycle is the reference behaviour.
  bool maybe_quiet() const {
    if (mem_.valid) return mem_.mem_issued && cycle_ < mem_.ready;
    if (if_.valid || id_.valid || ex_.valid) return false;
    return current_tid_ >= 0 &&
           (cycle_ < fetch_ready_ || fetch_pc_ >= program_.size());
  }

  /// All started threads halted.
  bool done() const { return live_threads_ == 0; }

  /// Run to completion (single-core convenience), fast-forwarding
  /// quiet stretches when config.skip is set. Throws on exceeding
  /// max_cycles (first at max_cycles + 1, same as the lockstep loop).
  void run();

  /// Like run(), but stop once @p max_insts further instructions have
  /// committed (detailed warm-up / measurement windows of the tiered
  /// runner). Does not write the final "cycles"/"instructions" stats.
  void run_insts(u64 max_insts);

  // --- Tiered simulation (sim::TieredRunner) ---
  /// Detach the detailed pipeline so the functional tier can take
  /// over: squash all in-flight (uncommitted) instructions — the
  /// oldest one's pc becomes the running thread's architectural resume
  /// pc — drop their rollback entries, release every held miss-line
  /// reservation and deschedule the core. Architectural state (memory,
  /// register contexts, NZCV, thread pcs) is untouched. Returns the
  /// tid that was running (-1 if none): the natural first thread for
  /// the functional scheduler.
  int cut_to_functional();

  /// Re-attach after a functional phase whose pseudo-clock reached
  /// @p warm_clock (>= cycle()): the elapsed span is charged to the
  /// FastForward bucket — keeping the closed-accounting invariant and
  /// the cache-recency ordering (warm LRU stamps never exceed the
  /// clock) — @p retired functionally-executed instructions join the
  /// commit count, and every live thread becomes schedulable at the
  /// new clock. The next step() re-enters through the initial-schedule
  /// path, charging a fresh context switch.
  void resume_from_functional(Cycle warm_clock, u64 retired);

  /// Functional HALT: retire thread @p tid from the scheduler without
  /// pipeline involvement. The caller runs the context manager's
  /// warm_thread_halt hook itself.
  void halt_thread_functional(int tid);

  /// Per-thread architectural state a detailed probe may disturb
  /// (tiered probe-and-revert: the golden replay stream is the sole
  /// driver of architectural progress, so a measurement probe's thread
  /// effects are reverted afterwards).
  struct ThreadProbeState {
    bool halted = false;
    u64 pc = 0;
    u8 nzcv = 0;
  };
  std::vector<ThreadProbeState> probe_snapshot() const;
  /// Revert thread scheduling state to @p snap. Must be called while
  /// detached (after cut_to_functional()); un-halts threads a probe
  /// halted and recomputes the live count. Register values and memory
  /// are reverted separately by the caller.
  void probe_restore(const std::vector<ThreadProbeState>& snap);

  // Architectural thread state, exposed for the functional executor.
  bool thread_started(int tid) const {
    return threads_[static_cast<std::size_t>(tid)].started;
  }
  bool thread_halted(int tid) const {
    return threads_[static_cast<std::size_t>(tid)].halted;
  }
  /// on_thread_start (initial context fetch) already ran for @p tid.
  bool thread_launched(int tid) const {
    return threads_[static_cast<std::size_t>(tid)].launched_context;
  }
  /// The functional tier ran warm_thread_start: a later detailed
  /// switch_to() must not replay on_thread_start over newer state.
  void mark_thread_launched(int tid) {
    threads_[static_cast<std::size_t>(tid)].launched_context = true;
  }
  u64 thread_pc(int tid) const {
    return threads_[static_cast<std::size_t>(tid)].pc;
  }
  void set_thread_pc(int tid, u64 pc) {
    threads_[static_cast<std::size_t>(tid)].pc = pc;
  }
  /// Mutable NZCV for the functional executor (isa::execute).
  u8& nzcv_ref(int tid) {
    return threads_[static_cast<std::size_t>(tid)].nzcv;
  }

  const CgmtCoreConfig& config() const { return config_; }

  Cycle cycle() const { return cycle_; }
  u64 instructions() const { return instructions_; }
  double ipc() const {
    return cycle_ == 0 ? 0.0
                       : static_cast<double>(instructions_) /
                             static_cast<double>(cycle_);
  }

  const StatSet& stats() const { return stats_; }
  StatSet& stats() { return stats_; }
  ContextManager& context_manager() { return rcm_; }

  /// Closed cycle accounting: every elapsed cycle attributed to one
  /// CycleBucket (Σ buckets == cycle(), skip and stepped bit-identical).
  const CycleAccount& cycle_account() const { return acct_; }

  /// Store-queue occupancy at @p now (telemetry counter tracks).
  u32 sq_occupancy(Cycle now) const { return sq_.occupancy(now); }

  /// Threads started and not yet halted.
  u32 live_threads() const { return live_threads_; }
  /// Threads that could run at @p now (started, not halted, not
  /// blocked on an outstanding miss).
  u32 runnable_threads(Cycle now) const;

  /// Attach a pipeline tracer (nullptr detaches). Not owned.
  void set_tracer(TraceSink* tracer) { tracer_ = tracer; }

  /// Attach the lockstep oracle / invariant context (nullptr detaches).
  /// Forwards to the store queue for its occupancy invariants.
  void set_check(check::CheckContext* check) {
    check_ = check;
    sq_.set_check(check);
  }

  /// Per-thread NZCV flags (functional sysreg, exposed for tests).
  u8 nzcv(int tid) const { return threads_[static_cast<std::size_t>(tid)].nzcv; }

  /// Checkpoint the whole pipeline: thread contexts, latches, frontend
  /// cursors, switch bookkeeping, the store queue and the stat set.
  /// The attached ContextManager checkpoints separately.
  void save_state(ckpt::Encoder& enc) const;
  void restore_state(ckpt::Decoder& dec);

  /// One-line description of what the core is (or is not) doing, used
  /// by the watchdog to name the stuck core/thread when max_cycles is
  /// exceeded.
  std::string watchdog_diagnosis() const;

 private:
  struct Thread {
    bool started = false;
    bool halted = false;
    u64 pc = 0;
    u8 nzcv = 0;
    Cycle blocked_until = 0;       // dcache miss outstanding
    Cycle start_ready = 0;         // initial context transfer
    bool launched_context = false; // on_thread_start already charged
    bool has_reserved_line = false;
    Addr reserved_line = 0;        // miss response held until resume
  };

  struct Latch {
    bool valid = false;
    u64 pc = 0;
    u64 pred_next = 0;
    isa::Inst inst;
    Cycle ready = 0;     // stage completion time
    bool decoded = false;
    bool mem_issued = false;
    Addr mem_addr = 0;   // effective address once issued
    /// Decode waited on register fill/spill traffic (cycle accounting).
    bool fill_wait = false;
    /// What an issued memory access is waiting on: 0 = nothing / hit
    /// pipeline, 1 = demand data miss, 2 = register-region miss,
    /// 3 = MSHR-full stall (cycle accounting).
    u8 mem_kind = 0;
  };

  /// Cause of an empty-pipe fetch_ready_ wait, for cycle accounting.
  enum FetchWaitCause : u8 { kFwFetch = 0, kFwSwitch, kFwMispredict };

  void do_fetch();
  void advance_if_id();
  void advance_id_ex();
  void advance_ex_mem();
  void handle_mem_and_commit();
  void commit(Latch& latch);
  /// Flush IF/ID/EX/MEM latches. @p replayed: a context switch will
  /// replay these instructions (vs. a wrong-path discard).
  void flush_pipeline(bool replayed);
  u64 predict_next(const isa::Inst& inst, u64 pc) const;
  /// Round-robin choice of the next thread to run; -1 if none exists.
  int pick_next_thread() const;
  /// Prediction of the thread that will run after @p after (prefetch
  /// hint for the context managers); -1 if none.
  int predict_thread_after(int after) const;
  /// Switch to @p to_tid (flush already done); schedules fetch start.
  void switch_to(int to_tid);
  /// Try to switch away from the in-flight miss; returns true if a
  /// switch happened (pipeline flushed).
  bool request_context_switch(u64 resume_pc, Cycle miss_done);
  /// Earliest blocked_until of a non-current live thread still in the
  /// future (kNeverCycle if none) — when the scheduler next gains a
  /// candidate.
  Cycle earliest_other_thread_ready() const;
  /// Pure classification of the current (quiet) state into a cycle
  /// bucket. step() consults it for cycles no explicit event tagged;
  /// skip_to() bulk-charges span * this — the two agree bit-for-bit
  /// because next_event_cycle() bounds every input of this function.
  CycleBucket classify_quiet() const;
  /// Record that this step's cycle belongs to @p bucket, attributed to
  /// the current thread.
  void tag_cycle(CycleBucket bucket) {
    acct_tag_ = bucket;
    acct_tid_ = current_tid_;
  }
  [[noreturn]] void throw_max_cycles() const;

  CgmtCoreConfig config_;
  CoreEnv env_;
  ContextManager& rcm_;
  const kasm::Program& program_;
  StoreQueue sq_;
  mem::Cache& icache_;  // this core's caches, resolved once
  mem::Cache& dcache_;
  std::vector<Thread> threads_;

  Cycle cycle_ = 0;
  u64 instructions_ = 0;
  int current_tid_ = -1;
  u32 live_threads_ = 0;
  bool committed_since_switch_ = true;
  Cycle fetch_ready_ = 0;  // earliest cycle the frontend may fetch
  u64 fetch_pc_ = 0;
  /// A dcache data miss is outstanding and a context switch will fire
  /// as soon as the CSL masks clear (or the miss returns first).
  bool switch_pending_ = false;
  Cycle switch_eligible_at_ = 0;  // miss-detection (tag check) delay
  u8 fetch_wait_cause_ = kFwFetch;

  Latch if_, id_, ex_, mem_;
  StatSet stats_;
  CycleAccount acct_;
  // Per-step accounting scratch (reset every step; not checkpointed).
  CycleBucket acct_tag_ = CycleBucket::kCount;
  int acct_tid_ = -1;
  // Detailed (opt-in) histograms; owned by stats_.
  Histogram* hist_run_length_ = nullptr;
  Histogram* hist_miss_latency_ = nullptr;
  // Hot-path counter handles (owned by stats_).
  double* c_context_switches_ = nullptr;
  double* c_halts_ = nullptr;
  double* c_branches_ = nullptr;
  double* c_mispredicts_ = nullptr;
  double* c_sq_full_stall_cycles_ = nullptr;
  double* c_reg_region_miss_stalls_ = nullptr;
  double* c_dcache_data_misses_ = nullptr;
  double* c_replay_misses_ = nullptr;
  double* c_switch_no_target_cycles_ = nullptr;
  double* c_switch_masked_cycles_ = nullptr;
  double* c_rf_miss_stall_cycles_ = nullptr;
  double* c_idle_cycles_ = nullptr;
  double* c_frontend_wait_cycles_ = nullptr;
  u64 episode_start_instructions_ = 0;
  TraceSink* tracer_ = nullptr;
  // Mutable: the oracle advances its shadow state at each commit.
  check::CheckContext* check_ = nullptr;
};

}  // namespace virec::cpu
