// Register-context prefetching into a double buffer (the LTRF-style
// alternative evaluated in Figure 9 of the paper): two 32-entry banks;
// while one thread executes out of one bank, the predicted next
// thread's context is prefetched into the other.
//
// Two strategies:
//  * kFull  — prefetch the complete 31-register context (plus sysregs)
//             and store back the full previous context on every switch;
//  * kExact — oracle prefetch of exactly the registers the thread will
//             use in its next scheduling episode. The oracle is
//             history-based: for the loop kernels studied here a
//             thread's per-episode register set is stable, so the set
//             used in the previous episode equals the future set in
//             steady state (documented substitution in DESIGN.md).
//
// Registers that the oracle missed are demand-fetched with a decode
// stall, and a wrong next-thread prediction falls back to a demand
// fetch of the whole needed set at switch time.
#pragma once

#include <array>
#include <cstring>
#include <vector>

#include "cpu/context_manager.hpp"

namespace virec::cpu {

enum class PrefetchMode { kFull, kExact };

class PrefetchManager final : public ContextManager {
 public:
  PrefetchManager(const CoreEnv& env, PrefetchMode mode);

  Cycle on_thread_start(int tid, Cycle now) override;
  DecodeAccess on_decode(int tid, const isa::Inst& inst, Cycle now) override;
  Cycle on_context_switch(int from_tid, int to_tid, int predicted_next,
                          Cycle now) override;
  void on_thread_halt(int tid, Cycle now) override;
  void warm_thread_start(int tid, Cycle warm_now) override;
  void warm_decode(int tid, const isa::Inst& inst, Cycle warm_now) override;
  void warm_context_switch(int from_tid, int to_tid, int predicted_next,
                           Cycle warm_now) override;
  void warm_thread_halt(int tid, Cycle warm_now) override;
  u32 physical_regs() const override;

  u64 read_reg(int tid, isa::RegId reg) override;
  void write_reg(int tid, isa::RegId reg, u64 value) override;

  void save_state(ckpt::Encoder& enc) const override;
  void restore_state(ckpt::Decoder& dec) override;

 private:
  using RegMask = u32;  // bit r set => x<r> involved, r in [0, 31)

  /// Issue dcache accesses for every register in @p mask starting at
  /// @p now; returns the completion of the last one.
  Cycle transfer(int tid, RegMask mask, bool is_write, Cycle now);
  /// Functional mirror of transfer(): same backing writes and dcache
  /// footprint via warm accesses, zero timing.
  void warm_transfer(int tid, RegMask mask, bool is_write, Cycle warm_now);
  /// The register set to prefetch for @p tid's next episode.
  RegMask predicted_set(int tid) const;

  PrefetchMode mode_;
  // Functional values (authoritative once a thread has started).
  std::vector<std::array<u64, isa::kNumAllocatableRegs>> values_;
  // Per-thread on-chip residency (only two threads are resident at a
  // time: the running one and the prefetched one).
  std::vector<RegMask> resident_;
  std::vector<RegMask> used_this_episode_;
  std::vector<RegMask> last_episode_used_;
  std::vector<bool> started_;
  std::vector<Cycle> prefetch_ready_;
  int prefetched_tid_ = -1;
  // Hot-path counter handles (owned by stats_).
  double* c_rf_accesses_ = nullptr;
  double* c_reg_fills_ = nullptr;
  double* c_reg_spills_ = nullptr;
  double* c_demand_fills_ = nullptr;
  double* c_context_switches_ = nullptr;
  double* c_prefetches_ = nullptr;
  double* c_prefetch_mispredicts_ = nullptr;
};

}  // namespace virec::cpu
