// Post-commit store queue. Committed stores drain to the dcache in the
// background through its single write port; the pipeline only stalls
// when all entries are occupied (5 in the paper's configurations).
#pragma once

#include <vector>

#include "ckpt/serialize.hpp"
#include "common/types.hpp"
#include "mem/cache.hpp"

namespace virec::check {
class CheckContext;
}  // namespace virec::check

namespace virec::cpu {

class StoreQueue {
 public:
  StoreQueue(u32 capacity, mem::Cache& dcache);

  /// Attach the hard-invariant context (nullptr detaches).
  void set_check(const check::CheckContext* check) { check_ = check; }

  /// Test hook: grow the entry vector past capacity so the occupancy
  /// invariant fires on the next push (simulates a lost-dealloc bug).
  void overfill_for_test(Cycle until) {
    completion_.assign(capacity_ + 1, until);
  }

  /// Accept a store at @p now, issuing its dcache access immediately.
  /// Returns false when the queue is full (the caller must stall).
  bool push(Addr addr, Cycle now, bool reg_region = false);

  /// Entries still in flight at @p now.
  u32 occupancy(Cycle now) const;

  bool empty(Cycle now) const { return occupancy(now) == 0; }

  /// Completion time of the last store accepted (0 if none).
  Cycle last_completion() const { return last_completion_; }

  /// Earliest in-flight completion strictly after @p now — the next
  /// cycle at which occupancy drops (kNeverCycle if the queue is
  /// quiescent). Event-skip input: between @p now and this cycle the
  /// queue's observable state cannot change on its own.
  Cycle next_event_cycle(Cycle now) const {
    Cycle next = kNeverCycle;
    for (const Cycle c : completion_) {
      if (c > now && c < next) next = c;
    }
    return next;
  }

  /// Checkpoint the in-flight completion times.
  void save_state(ckpt::Encoder& enc) const {
    enc.put_cycle_vec(completion_);
    enc.put_u64(last_completion_);
  }
  void restore_state(ckpt::Decoder& dec) {
    // completion_ grows on demand up to capacity_, so only the upper
    // bound is checked.
    std::vector<Cycle> completion = dec.get_cycle_vec();
    if (completion.size() > capacity_) {
      throw ckpt::CkptError("StoreQueue: snapshot entry count exceeds "
                            "capacity");
    }
    completion_ = std::move(completion);
    last_completion_ = dec.get_u64();
  }

 private:
  u32 capacity_;
  mem::Cache& dcache_;
  std::vector<Cycle> completion_;
  Cycle last_completion_ = 0;
  const check::CheckContext* check_ = nullptr;
};

}  // namespace virec::cpu
