// Post-commit store queue. Committed stores drain to the dcache in the
// background through its single write port; the pipeline only stalls
// when all entries are occupied (5 in the paper's configurations).
#pragma once

#include <vector>

#include "common/types.hpp"
#include "mem/cache.hpp"

namespace virec::cpu {

class StoreQueue {
 public:
  StoreQueue(u32 capacity, mem::Cache& dcache);

  /// Accept a store at @p now, issuing its dcache access immediately.
  /// Returns false when the queue is full (the caller must stall).
  bool push(Addr addr, Cycle now, bool reg_region = false);

  /// Entries still in flight at @p now.
  u32 occupancy(Cycle now) const;

  bool empty(Cycle now) const { return occupancy(now) == 0; }

  /// Completion time of the last store accepted (0 if none).
  Cycle last_completion() const { return last_completion_; }

 private:
  u32 capacity_;
  mem::Cache& dcache_;
  std::vector<Cycle> completion_;
  Cycle last_completion_ = 0;
};

}  // namespace virec::cpu
