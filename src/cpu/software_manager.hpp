// Software context switching (Figure 3(a) of the paper): a single
// 32-entry register file; on every context switch the previous thread's
// registers and system registers are stored to memory and the next
// thread's are loaded, one 8-byte access at a time through the dcache,
// exactly like a software trap handler would.
#pragma once

#include <array>
#include <vector>

#include "cpu/context_manager.hpp"

namespace virec::cpu {

class SoftwareManager final : public ContextManager {
 public:
  explicit SoftwareManager(const CoreEnv& env);

  Cycle on_thread_start(int tid, Cycle now) override;
  DecodeAccess on_decode(int tid, const isa::Inst& inst, Cycle now) override;
  Cycle on_context_switch(int from_tid, int to_tid, int predicted_next,
                          Cycle now) override;
  void on_thread_halt(int tid, Cycle now) override;
  void warm_decode(int tid, const isa::Inst& inst, Cycle warm_now) override;
  void warm_thread_halt(int tid, Cycle warm_now) override;
  u32 physical_regs() const override;

  // RegisterFileIO: only the resident thread has live values; all other
  // threads' values live in the backing region.
  u64 read_reg(int tid, isa::RegId reg) override;
  void write_reg(int tid, isa::RegId reg, u64 value) override;

  void save_state(ckpt::Encoder& enc) const override;
  void restore_state(ckpt::Decoder& dec) override;

 private:
  /// Store the resident context to memory (one store per register).
  Cycle save_context(int tid, Cycle now);
  /// Load @p tid's context from memory into the RF.
  Cycle load_context(int tid, Cycle now);

  int resident_tid_ = -1;
  std::array<u64, isa::kNumAllocatableRegs> rf_{};
  // Hot-path counter handles (owned by stats_).
  double* c_rf_accesses_ = nullptr;
  double* c_context_saves_ = nullptr;
  double* c_context_loads_ = nullptr;
};

}  // namespace virec::cpu
