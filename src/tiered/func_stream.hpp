// Shared functional streams (docs/performance.md, "Stream reuse").
//
// A sampled tiered run spends most of its instructions in the
// functional tier, and that tier's work — the architectural values
// every instruction produces plus the thread schedule — depends only
// on the *functional identity* of the experiment point (workload +
// parameters + topology + dcache geometry; see
// ckpt::functional_stream_hash). A policy or scheme sweep therefore
// re-pays the same interpretation N times.
//
// build_func_stream() pays it once: a golden interleaved pass over a
// clone of the system's memory records, per committed instruction, a
// compact delta record (successor PC when not sequential, NZCV when
// changed, the memory address and stored bytes, the destination
// register values, and scheduler rotation events). FuncStreamReplayer
// then re-applies those records through a point's OWN warm hooks
// (icache/dcache warm_access, warm_decode, warm_context_switch,
// warm_thread_start/halt) and register write path — so per-point
// microarchitectural warm state is exactly what a live functional
// execution of the same schedule would produce, without re-running
// isa::execute.
//
// The golden pass mirrors FunctionalExecutor's scheduling (rotate on
// switch-on-miss demand-load misses and every kRotationPeriod
// instructions), with one substitution: load hit/miss decisions come
// from a private, deterministically cold tag-only LRU model of the
// dcache geometry instead of the live dcache, so the recorded schedule
// cannot depend on any point-specific warm state and one stream is
// valid for every point sharing the identity.
//
// StreamCache is the process-wide rendezvous: all stream acquisitions
// funnel through it, deduplicating builds across the points of an
// in-process sweep and, when a directory is configured, persisting
// streams on disk (CRC-guarded, written atomically) so later processes
// skip the build too.
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/system.hpp"

namespace virec::sim {

/// One recorded functional execution, immutable once built.
struct FuncStream {
  u64 identity = 0;    ///< ckpt::functional_stream_hash (0 = unkeyed)
  u32 num_threads = 0;
  int start_tid = 0;   ///< first scheduled thread
  u64 n_total = 0;     ///< records == committed instructions
  std::vector<u8> records;  ///< varint-packed per-instruction deltas
};

/// Golden interleaved pass over @p system's current program/workload
/// state: executes every thread to completion against clones of the
/// initial register contexts and memory (the system is untouched) and
/// records the stream. Throws std::runtime_error when the instruction
/// count exceeds the core's max_cycles watchdog budget.
std::shared_ptr<const FuncStream> build_func_stream(System& system,
                                                    u64 identity);

/// Advance-only cursor over a FuncStream that re-applies records
/// through a live system's warm hooks and architectural write paths.
/// One replayer drives a whole sampled run 0 -> n_total; detailed
/// probes in between must be reverted (TieredRunner's probe-and-revert)
/// so the stream stays the sole driver of architectural state.
class FuncStreamReplayer {
 public:
  FuncStreamReplayer(std::shared_ptr<const FuncStream> stream,
                     const kasm::Program& program);

  u64 pos() const { return pos_; }
  bool done() const { return pos_ >= stream_->n_total; }
  int cur_tid() const { return cur_tid_; }
  const FuncStream& stream() const { return *stream_; }

  /// Replay records [pos, min(target, n_total)): warm the icache /
  /// dcache / context manager, apply register, memory and NZCV deltas,
  /// update thread PCs and drive launch/halt/switch hooks exactly as
  /// FunctionalExecutor would. @p warm_clock advances by @p cpi_scale
  /// per record; the final value is returned (pass it to
  /// CgmtCore::resume_from_functional). @p check, when non-null and
  /// enabled, receives pre/post_commit for every record so the lockstep
  /// oracle validates the stream against its reference interpreter.
  Cycle advance(u64 target, cpu::CgmtCore& core, cpu::ContextManager& rcm,
                mem::MemorySystem& ms, check::CheckContext* check,
                Cycle warm_clock, u64 cpi_scale);

  /// Decode-only fast-forward of the cursor to @p target (thread PCs,
  /// halt flags and the scheduled thread advance; no system effects).
  /// Checkpoint restore uses this to re-seat a fresh replayer at the
  /// snapshot's stream position.
  void seek(u64 target);

 private:
  struct Decoded;
  /// Decode the record at the cursor (updating byte_ only).
  Decoded decode_next(const isa::Inst*& inst, u64& pc);
  /// Post-record bookkeeping shared by advance/seek: PC, halt flag and
  /// scheduler updates. Returns the outgoing tid's successor (-1 when
  /// the thread pool is exhausted).
  int pick_next(int after, int exclude) const;

  std::shared_ptr<const FuncStream> stream_;
  const kasm::Program* program_;
  u64 pos_ = 0;
  std::size_t byte_ = 0;
  int cur_tid_;
  std::vector<u64> pcs_;
  std::vector<u8> halted_;
  u32 live_ = 0;
};

/// Process-wide stream registry: deduplicates builds across the points
/// of a sweep (and across threads) and optionally persists streams to
/// disk. Key 0 opts out of sharing entirely (always a local build).
class StreamCache {
 public:
  struct Stats {
    u64 built = 0;     ///< golden passes actually executed
    u64 loaded = 0;    ///< streams deserialized from disk
    u64 mem_hits = 0;  ///< acquisitions served from the in-memory map
  };

  static StreamCache& instance();

  /// Return the stream for @p key, building it from @p system at most
  /// once per process (concurrent acquirers of the same key block
  /// until the first finishes). @p dir, when non-empty, is probed for
  /// a persisted stream before building and receives newly built
  /// streams ("<hex key>.vfs", written atomically; unreadable or
  /// corrupt files degrade to a rebuild, never an error).
  std::shared_ptr<const FuncStream> acquire(u64 key, const std::string& dir,
                                            System& system);

  Stats stats() const;
  /// Drop every cached stream and zero the counters (tests / CI smoke).
  void reset_for_test();

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<u64, std::shared_ptr<const FuncStream>> streams_;
  std::unordered_set<u64> building_;
  Stats stats_;
};

/// Disk codec (exposed for tests): returns nullptr on any I/O error,
/// magic/version/CRC mismatch or identity disagreement.
std::shared_ptr<const FuncStream> load_func_stream(const std::string& path,
                                                   u64 expect_identity);
/// Atomic (tmp + rename) write; returns false on I/O failure.
bool save_func_stream(const std::string& path, const FuncStream& stream);

}  // namespace virec::sim
