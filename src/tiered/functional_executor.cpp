#include "tiered/functional_executor.hpp"

#include "isa/semantics.hpp"
#include "mem/memory_system.hpp"

namespace virec::sim {

FunctionalExecutor::FunctionalExecutor(cpu::CgmtCore& core,
                                       cpu::ContextManager& rcm,
                                       mem::MemorySystem& ms,
                                       const kasm::Program& program,
                                       u32 core_id,
                                       check::CheckContext* check,
                                       int start_tid, u64 cpi_scale)
    : core_(core),
      rcm_(rcm),
      ms_(ms),
      program_(program),
      icache_(ms.icache(core_id)),
      dcache_(ms.dcache(core_id)),
      core_id_(core_id),
      num_threads_(core.config().num_threads),
      switch_on_miss_(core.config().switch_on_miss),
      check_(check),
      cur_tid_(start_tid),
      warm_clock_(core.cycle()),
      cpi_scale_(cpi_scale == 0 ? 1 : cpi_scale) {}

int FunctionalExecutor::pick_next(int after, int exclude) const {
  const u32 n = num_threads_;
  const u32 base = after < 0 ? n - 1 : static_cast<u32>(after);
  for (u32 s = 1; s <= n; ++s) {
    const int tid = static_cast<int>((base + s) % n);
    if (tid == after || tid == exclude) continue;
    if (core_.thread_started(tid) && !core_.thread_halted(tid)) return tid;
  }
  return -1;
}

u64 FunctionalExecutor::run(u64 max_insts) {
  u64 executed = 0;
  if (cur_tid_ >= 0 && core_.thread_halted(cur_tid_)) cur_tid_ = -1;
  while (executed < max_insts && core_.live_threads() > 0) {
    if (cur_tid_ < 0) {
      cur_tid_ = pick_next(-1, -1);
      run_length_ = 0;
      if (cur_tid_ < 0) break;  // defensive; live_threads() > 0 implies found
    }
    const int tid = cur_tid_;
    if (!core_.thread_launched(tid)) {
      // Initial context fetch: functional equivalent of
      // on_thread_start. Marking the thread launched stops a later
      // detailed switch_to() replaying it over newer register values.
      rcm_.warm_thread_start(tid, warm_clock_);
      core_.mark_thread_launched(tid);
    }
    const u64 pc = core_.thread_pc(tid);
    const isa::Inst& inst = program_.at(pc);
    icache_.warm_access(mem::MemorySystem::code_addr(pc), /*is_write=*/false,
                        warm_clock_);
    rcm_.warm_decode(tid, inst, warm_clock_);

    // Warm the data path before executing: the effective address uses
    // pre-commit register values, exactly as the MEM stage computes it.
    bool load_miss = false;
    if (isa::is_mem(inst.op)) {
      const Addr addr = isa::compute_mem_addr(inst, tid, rcm_);
      const bool reg_region = ms_.in_reg_region(addr);
      const bool is_write = isa::is_store(inst.op);
      const bool hit = dcache_.warm_access(addr, is_write, warm_clock_,
                                           reg_region);
      // Only demand-load data misses trigger CGMT switches (stores
      // drain through the store queue; register-region misses never
      // switch).
      load_miss = !hit && !is_write && !reg_region;
    }

    u8& nzcv = core_.nzcv_ref(tid);
    if (check_ != nullptr) {
      check_->pre_commit(core_id_, tid, inst, pc, warm_clock_, rcm_, nzcv);
    }
    const isa::ExecResult res =
        isa::execute(inst, pc, tid, rcm_, ms_.memory(), nzcv);
    if (check_ != nullptr) {
      check_->post_commit(core_id_, tid, inst, pc, warm_clock_, rcm_, nzcv,
                          res);
    }
    core_.set_thread_pc(tid, res.next_pc);
    ++executed;
    warm_clock_ += cpi_scale_;
    ++run_length_;

    if (res.halted) {
      rcm_.warm_thread_halt(tid, warm_clock_);
      core_.halt_thread_functional(tid);
      const int next = pick_next(tid, -1);
      if (next >= 0) {
        rcm_.warm_context_switch(tid, next, pick_next(next, tid), warm_clock_);
      }
      cur_tid_ = next;
      run_length_ = 0;
      continue;
    }

    const bool rotate = (load_miss && switch_on_miss_) ||
                        run_length_ >= kRotationPeriod;
    if (rotate && core_.live_threads() > 1) {
      const int next = pick_next(tid, -1);
      if (next >= 0 && next != tid) {
        rcm_.warm_context_switch(tid, next, pick_next(next, tid), warm_clock_);
        cur_tid_ = next;
        run_length_ = 0;
      }
    }
  }
  return executed;
}

}  // namespace virec::sim
