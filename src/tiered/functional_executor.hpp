// The functional fast-forward tier (tiered simulation, see
// docs/performance.md): drives one core's architectural state forward
// without per-cycle pipeline stepping. Instructions execute through
// isa::execute against the core's own context manager and memory — so
// register contexts, NZCV and data memory stay bit-exact with the
// cycle model — while the warm_* hooks keep the microarchitectural
// warm state (cache tags/LRU, ViReC tag-store and BSI residency, CSL
// ping-pong buffer, DRAM row buffers) hot enough that a short detailed
// warm-up converges after re-attach.
//
// A pseudo-clock advances cpi_scale cycles per executed instruction
// (the caller's running CPI estimate from the detailed stretches, so
// warm recency stamps are spaced like real ones), starting from the
// core's frozen cycle; CgmtCore::resume_from_functional() later
// advances the real clock to it (charged to the FastForward bucket),
// so recency ordering survives the tier switch.
#pragma once

#include "check/check.hpp"
#include "cpu/cgmt_core.hpp"

namespace virec::sim {

class FunctionalExecutor {
 public:
  /// @p start_tid: thread to execute first (the one running at the
  /// cut; < 0 picks the first live thread). @p check may be nullptr.
  /// @p cpi_scale: warm-clock cycles charged per instruction (clamped
  /// to >= 1); pass the measured CPI of the detailed stretches so far.
  FunctionalExecutor(cpu::CgmtCore& core, cpu::ContextManager& rcm,
                     mem::MemorySystem& ms, const kasm::Program& program,
                     u32 core_id, check::CheckContext* check, int start_tid,
                     u64 cpi_scale = 1);

  /// Execute up to @p max_insts instructions across the live threads,
  /// mirroring the CGMT schedule functionally: round-robin rotation on
  /// data-cache load misses (switch_on_miss) and a forced rotation
  /// every kRotationPeriod instructions so hit-heavy stretches still
  /// interleave. Returns the number executed (less when every thread
  /// halts first).
  u64 run(u64 max_insts);

  Cycle warm_clock() const { return warm_clock_; }

  /// Functional scheduler rotation period (instructions).
  static constexpr u64 kRotationPeriod = 128;

 private:
  /// First live thread after @p after in cyclic tid order, skipping
  /// @p exclude; -1 if none.
  int pick_next(int after, int exclude) const;

  cpu::CgmtCore& core_;
  cpu::ContextManager& rcm_;
  mem::MemorySystem& ms_;
  const kasm::Program& program_;
  mem::Cache& icache_;
  mem::Cache& dcache_;
  u32 core_id_;
  u32 num_threads_;
  bool switch_on_miss_;
  check::CheckContext* check_;
  int cur_tid_;
  u64 run_length_ = 0;
  Cycle warm_clock_;
  u64 cpi_scale_;
};

}  // namespace virec::sim
