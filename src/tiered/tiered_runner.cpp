#include "tiered/tiered_runner.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "tiered/functional_executor.hpp"

namespace virec::sim {

namespace {

double now_secs() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Two-sided 95% Student-t quantile for small window counts (df = n-1);
// converges to the normal 1.96 the sampled-simulation literature quotes.
double t_quantile_95(std::size_t df) {
  static constexpr double kTable[] = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086};
  if (df == 0) return 12.706;
  if (df <= 20) return kTable[df - 1];
  if (df <= 30) return 2.042;
  if (df <= 60) return 2.000;
  return 1.96;
}

}  // namespace

void TieredConfig::validate() const {
  if (functional_ff && sample_windows > 0) {
    throw std::invalid_argument(
        "TieredConfig: --functional-ff and --sample-windows are exclusive "
        "(plain fast-forward has no measurement windows)");
  }
  if (!functional_ff && sample_windows == 0) {
    throw std::invalid_argument(
        "TieredConfig: nothing to run (no windows, no fast-forward)");
  }
  if (sample_windows > 0 && window_insts == 0) {
    throw std::invalid_argument(
        "TieredConfig: window_insts must be > 0 (zero-size measurement "
        "windows estimate nothing)");
  }
  if (adaptive_warmup == 0) {
    throw std::invalid_argument(
        "TieredConfig: adaptive_warmup must be >= 1 (1 = fixed warm-up)");
  }
  if (warm_set_sample == 0 ||
      (warm_set_sample & (warm_set_sample - 1)) != 0) {
    throw std::invalid_argument(
        "TieredConfig: warm_set_sample must be a power of two (1 = full "
        "warming)");
  }
}

TieredRunner::TieredRunner(System& system, const TieredConfig& config)
    : sys_(system), config_(config) {
  config_.validate();
  if (system.config().num_cores != 1) {
    throw std::invalid_argument(
        "TieredRunner: tiered simulation supports single-core systems only");
  }
}

void TieredRunner::set_progress(std::function<void(const TieredProgress&)> fn,
                                double every_secs) {
  progress_ = std::move(fn);
  progress_every_secs_ = every_secs;
}

u64 TieredRunner::functional_instruction_count(System& system) {
  // Plain per-thread register files seeded like the offloaded
  // contexts; memory is a clone, so the real system stays untouched.
  struct FlatRegFile final : isa::RegisterFileIO {
    std::vector<std::array<u64, isa::kNumAllocatableRegs>> regs;
    u64 read_reg(int tid, isa::RegId reg) override {
      return regs[static_cast<std::size_t>(tid)][reg];
    }
    void write_reg(int tid, isa::RegId reg, u64 value) override {
      regs[static_cast<std::size_t>(tid)][reg] = value;
    }
  };
  const u32 total = system.total_threads();
  FlatRegFile rf;
  rf.regs.resize(total);
  for (u32 gtid = 0; gtid < total; ++gtid) {
    const workloads::RegContext regs =
        system.workload().thread_regs(system.params(), gtid, total);
    for (u32 r = 0; r < isa::kNumAllocatableRegs; ++r) {
      rf.regs[gtid][r] = regs[r];
    }
  }
  mem::SparseMemory memory = system.memory_system().memory();
  const kasm::Program& program = system.program();
  // Instructions never outnumber cycles on this 1-wide core, so the
  // watchdog budget bounds the prepass too.
  const u64 cap = system.config().core.max_cycles;
  u64 total_insts = 0;
  for (u32 gtid = 0; gtid < total; ++gtid) {
    u64 pc = 0;
    u8 nzcv = 0;
    while (true) {
      const isa::ExecResult res = isa::execute(
          program.at(pc), pc, static_cast<int>(gtid), rf, memory, nzcv);
      ++total_insts;
      if (res.halted) break;
      pc = res.next_pc;
      if (total_insts > cap) {
        throw std::runtime_error(
            "TieredRunner: functional prepass exceeded the max_cycles "
            "instruction budget");
      }
    }
  }
  return total_insts;
}

u64 TieredRunner::cpi_scale() const {
  if (insts_detailed_ == 0) return 1;
  return std::max<u64>(1, (cycles_detailed_ + insts_detailed_ / 2) /
                              insts_detailed_);
}

void TieredRunner::functional_advance(u64 insts) {
  cpu::CgmtCore& core = sys_.core(0);
  if (insts == 0 || core.done()) return;
  const int start_tid = core.cut_to_functional();
  FunctionalExecutor fx(core, sys_.manager(0), sys_.memory_system(),
                        sys_.program(), /*core_id=*/0, sys_.check(),
                        start_tid, cpi_scale());
  u64 done = 0;
  double last = now_secs();
  while (done < insts && core.live_threads() > 0) {
    const u64 chunk = std::min<u64>(insts - done, u64{1} << 16);
    const u64 ran = fx.run(chunk);
    if (ran == 0) break;  // defensive: live threads imply progress
    done += ran;
    pending_functional_ = done;
    insts_functional_ += ran;
    const double t = now_secs();
    wall_functional_ += t - last;
    last = t;
    emit_progress("functional", false);
  }
  pending_functional_ = 0;
  core.resume_from_functional(fx.warm_clock(), done);
}

void TieredRunner::replay_advance(u64 target) {
  cpu::CgmtCore& core = sys_.core(0);
  if (target > n_total_) target = n_total_;
  if (replayer_->pos() >= target && !detached_) return;
  if (!detached_) {
    core.cut_to_functional();
    detached_ = true;
  }
  Cycle wc = core.cycle();
  const u64 scale = cpi_scale();
  double last = now_secs();
  while (replayer_->pos() < target) {
    const u64 before = replayer_->pos();
    const u64 chunk = std::min<u64>(target - before, u64{1} << 16);
    wc = replayer_->advance(before + chunk, core, sys_.manager(0),
                            sys_.memory_system(), sys_.check(), wc, scale);
    const u64 ran = replayer_->pos() - before;
    if (ran == 0) break;  // defensive: target <= n_total implies progress
    insts_functional_ += ran;
    pending_functional_ += ran;
    const double t = now_secs();
    wall_functional_ += t - last;
    last = t;
    emit_progress("functional", false);
  }
  pending_functional_ = 0;
  // A reverted probe's committed instructions are already in the core's
  // count (probes execute real golden instructions; only their
  // architectural side effects were reverted), so credit the replay
  // with the difference that lands the commit count on target.
  const u64 committed = sys_.total_instructions();
  core.resume_from_functional(wc, target > committed ? target - committed : 0);
  detached_ = false;
}

void TieredRunner::begin_probe() {
  if (sys_.check() != nullptr) sys_.check()->set_enabled(false);
  cpu::ContextManager& rcm = sys_.manager(0);
  cpu::CgmtCore& core = sys_.core(0);
  const u32 total = sys_.total_threads();
  probe_regs_.assign(total, {});
  probe_launched_.assign(total, 0);
  for (u32 tid = 0; tid < total; ++tid) {
    // Pre-launch threads have no meaningful on-chip register state —
    // their architectural values live in the context region the memory
    // journal reverts; snapshot only launched threads.
    if (!core.thread_launched(static_cast<int>(tid))) continue;
    probe_launched_[tid] = 1;
    for (u32 r = 0; r < isa::kNumAllocatableRegs; ++r) {
      probe_regs_[tid][r] =
          rcm.read_reg(static_cast<int>(tid), static_cast<isa::RegId>(r));
    }
  }
  probe_threads_ = core.probe_snapshot();
  sys_.memory_system().memory().journal_begin();
}

void TieredRunner::end_probe() {
  cpu::CgmtCore& core = sys_.core(0);
  // Cut FIRST: squashing the probe's in-flight instructions computes
  // resume PCs from the pipeline latches, which must happen before the
  // golden PCs are restored underneath it.
  core.cut_to_functional();
  detached_ = true;
  sys_.memory_system().memory().journal_rollback();
  // Registers after memory: backing-store values live in the context
  // regions the rollback just restored; the diff-write then fixes the
  // on-chip resident copies through the scheme's canonical write path.
  // Threads the probe itself launched (launch flags are sticky; the
  // replay's launch guard will skip them) are reverted to their initial
  // context image instead — at snapshot time their architectural state
  // was the context region, not the unfetched on-chip storage.
  cpu::ContextManager& rcm = sys_.manager(0);
  mem::MemorySystem& ms = sys_.memory_system();
  for (u32 tid = 0; tid < probe_regs_.size(); ++tid) {
    if (!core.thread_launched(static_cast<int>(tid))) continue;
    for (u32 r = 0; r < isa::kNumAllocatableRegs; ++r) {
      const u64 want = probe_launched_[tid] != 0
                           ? probe_regs_[tid][r]
                           : ms.memory().read(ms.reg_addr(0, tid, r), 8);
      const auto reg = static_cast<isa::RegId>(r);
      if (rcm.read_reg(static_cast<int>(tid), reg) != want) {
        rcm.write_reg(static_cast<int>(tid), reg, want);
      }
    }
  }
  core.probe_restore(probe_threads_);
  if (sys_.check() != nullptr) sys_.check()->set_enabled(true);
}

void TieredRunner::adaptive_warmup_extend(u64 spacing, u64 wk) {
  // Base warm-up chunk first, measuring its dcache miss rate; then,
  // with adaptive_warmup > 1, keep burning W-sized chunks while the
  // chunk-over-chunk miss rate is still moving (a bulk context-switch
  // scheme refilling a large working set warms far more slowly than a
  // register-cache scheme). Every extension fits inside the stratum's
  // slack, so the probe can never spill into the next stratum.
  const u64 w = config_.warmup_insts;
  const StatSet& st = sys_.memory_system().dcache(0).stats();
  const auto accesses = [&st] { return st.get("reads") + st.get("writes"); };
  const u64 slack = spacing > wk ? (spacing - wk) / 2 : 0;
  const u64 cap =
      w > 0 ? std::min<u64>(config_.adaptive_warmup - 1, slack / w) : 0;
  double prev_rate = -1.0;
  for (u64 chunk = 0; chunk <= cap && !sys_.core(0).done(); ++chunk) {
    const double a0 = accesses();
    const double m0 = st.get("misses");
    run_detailed(w);
    const double da = accesses() - a0;
    const double rate = da > 0.0 ? (st.get("misses") - m0) / da : 0.0;
    const bool converged =
        prev_rate >= 0.0 &&
        std::fabs(rate - prev_rate) <= std::max(0.1 * prev_rate, 0.005);
    prev_rate = rate;
    if (converged) break;
  }
}

void TieredRunner::run_detailed(u64 insts) {
  if (insts == 0 || sys_.core(0).done()) return;
  const double t0 = now_secs();
  const u64 before = sys_.total_instructions();
  const Cycle c0 = sys_.core(0).cycle();
  sys_.run_detailed_insts(insts);
  insts_detailed_ += sys_.total_instructions() - before;
  cycles_detailed_ += sys_.core(0).cycle() - c0;
  wall_detailed_ += now_secs() - t0;
  emit_progress("detailed", false);
}

void TieredRunner::emit_progress(const char* tier, bool force) {
  if (!progress_) return;
  const double now = now_secs();
  if (!force && now < next_emit_wall_) return;
  next_emit_wall_ = now + progress_every_secs_;
  TieredProgress p;
  p.tier = tier;
  p.insts_done = sys_.total_instructions() + pending_functional_;
  p.insts_total = n_total_;
  p.window = window_;
  p.windows = config_.sample_windows;
  p.wall_secs = now - wall_start_;
  // Instruction-based ETA with one measured rate per tier: the plan
  // splits the remaining instructions into detailed (unfinished
  // windows' warm-up + measurement) and functional (everything else).
  const double f_rate = wall_functional_ > 0.0
                            ? static_cast<double>(insts_functional_) /
                                  wall_functional_
                            : 0.0;
  const double d_rate = wall_detailed_ > 0.0
                            ? static_cast<double>(insts_detailed_) /
                                  wall_detailed_
                            : 0.0;
  const u64 rem_total =
      n_total_ > p.insts_done ? n_total_ - p.insts_done : 0;
  const u64 windows_left =
      config_.sample_windows > window_ ? config_.sample_windows - window_ : 0;
  const u64 rem_detailed = std::min<u64>(
      rem_total,
      static_cast<u64>(windows_left) *
          (config_.warmup_insts + config_.window_insts));
  const u64 rem_functional = rem_total - rem_detailed;
  double eta = 0.0;
  if (f_rate > 0.0) {
    eta += static_cast<double>(rem_functional) / f_rate;
  } else if (d_rate > 0.0) {
    eta += static_cast<double>(rem_functional) / d_rate;
  }
  if (d_rate > 0.0) {
    eta += static_cast<double>(rem_detailed) / d_rate;
  } else if (f_rate > 0.0 && rem_detailed > 0) {
    // No detailed rate measured yet: a detailed window runs orders of
    // magnitude slower than the functional tier; leave its share out
    // rather than fabricate a rate (the ETA firms up after window 1).
  }
  p.eta_secs = eta;
  progress_(p);
}

void TieredRunner::finalize(TieredResult& r) {
  r.full = sys_.make_result();
  r.total_insts = n_total_;
  r.windows = windows_;
  r.insts_functional = insts_functional_;
  r.insts_detailed = insts_detailed_;
  r.wall_secs_functional = wall_functional_;
  r.wall_secs_detailed = wall_detailed_;
  const std::size_t n = windows_.size();
  if (n == 0) return;
  double sum = 0.0;
  for (const WindowStat& w : windows_) sum += w.cpi;
  const double mean = sum / static_cast<double>(n);
  double half = 0.0;
  if (n >= 2) {
    double var = 0.0;
    for (const WindowStat& w : windows_) {
      var += (w.cpi - mean) * (w.cpi - mean);
    }
    var /= static_cast<double>(n - 1);
    half = t_quantile_95(n - 1) * std::sqrt(var / static_cast<double>(n));
  }
  r.cpi_mean = mean;
  r.cpi_ci_half = half;
  // Stratified estimate: exact cycles for every detailed instruction
  // (pilot + warm-ups + windows — this is what captures the cold-start
  // transient), windowed CPI extrapolated over the functional spans
  // only. The interval maps the CPI interval through the same sum.
  const double detailed = static_cast<double>(cycles_detailed_);
  const double func_insts = static_cast<double>(
      n_total_ - std::min<u64>(n_total_, insts_detailed_));
  r.est_cycles = detailed + mean * func_insts;
  const double total = static_cast<double>(n_total_);
  r.est_ipc = r.est_cycles > 0.0 ? total / r.est_cycles : 0.0;
  const double hi_cycles = detailed + (mean + half) * func_insts;
  r.est_ipc_lo = hi_cycles > 0.0 ? total / hi_cycles : 0.0;
  const double lo_cycles = detailed + (mean - half) * func_insts;
  r.est_ipc_hi = lo_cycles > 0.0 ? total / lo_cycles
                                 : std::numeric_limits<double>::infinity();
}

TieredResult TieredRunner::run() {
  wall_start_ = now_secs();
  next_emit_wall_ = wall_start_ + progress_every_secs_;
  TieredResult r;
  cpu::CgmtCore& core = sys_.core(0);
  if (config_.functional_ff) {
    // Fast-forward keeps the live functional tier (and its oracle
    // coverage); no stream is recorded or replayed.
    if (!prepass_done_) {
      emit_progress("prepass", false);
      n_total_ = functional_instruction_count(sys_);
      prepass_done_ = true;
    }
    while (!core.done()) functional_advance(n_total_ + 1);
    emit_progress("functional", true);
    finalize(r);
    return r;
  }
  // Sampled path: acquire the (possibly sweep-shared) functional
  // stream — it subsumes the prepass, since recording fixes the total
  // instruction count — then alternate replayed functional stretches
  // with reverted detailed probes.
  if (config_.warm_set_sample > 1) {
    sys_.memory_system().dcache(0).set_warm_set_sample(
        config_.warm_set_sample);
  }
  if (stream_ == nullptr) {
    emit_progress("prepass", false);
    const double t0 = now_secs();
    stream_ = StreamCache::instance().acquire(config_.stream_key,
                                              config_.stream_dir, sys_);
    replayer_ = std::make_unique<FuncStreamReplayer>(stream_, sys_.program());
    wall_functional_ += now_secs() - t0;
  }
  n_total_ = stream_->n_total;
  prepass_done_ = true;
  const u64 wk = config_.warmup_insts + config_.window_insts;
  const u32 n = config_.sample_windows;
  if (static_cast<u64>(n) * wk > n_total_) {
    throw std::invalid_argument(
        "TieredRunner: " + std::to_string(n) + " windows of " +
        std::to_string(wk) +
        " instructions (warm-up + measured) exceed the workload's " +
        std::to_string(n_total_) +
        " total instructions; shrink --sample-windows, --window-insts or "
        "--warmup-insts");
  }
  const u64 spacing = n_total_ / n;
  // Detailed pilot: the first replayed stretch needs a CPI estimate
  // (warm-clock scale) and observed miss latencies (warm-fill recency
  // bias) to warm state faithfully, so burn one window-equivalent of
  // detailed execution at the start. Like every probe it is reverted —
  // the replay below re-executes the same golden positions — but its
  // warm state and CPI carry forward. Skipped on restore (a detailed
  // stretch has already run).
  if (insts_detailed_ == 0 && window_ == 0) {
    const u64 first_start = spacing > wk ? (spacing - wk) / 2 : 0;
    const u64 pilot = std::min(wk, first_start);
    if (pilot > 0 && !core.done()) {
      begin_probe();
      run_detailed(pilot);
      end_probe();
    }
  }
  while (window_ < n) {
    // Systematic placement: window i's detailed stretch is centred in
    // its stratum [i*spacing, (i+1)*spacing).
    const u64 detail_start = static_cast<u64>(window_) * spacing +
                             (spacing > wk ? (spacing - wk) / 2 : 0);
    replay_advance(detail_start);
    begin_probe();
    adaptive_warmup_extend(spacing, wk);
    WindowStat w;
    w.start_inst = sys_.total_instructions();
    const Cycle c0 = core.cycle();
    std::array<double, kNumCycleBuckets> s0{};
    for (std::size_t b = 0; b < kNumCycleBuckets; ++b) {
      s0[b] = sys_.cpi_bucket_cycles(static_cast<CycleBucket>(b));
    }
    run_detailed(config_.window_insts);
    w.insts = sys_.total_instructions() - w.start_inst;
    w.cycles = core.cycle() - c0;
    for (std::size_t b = 0; b < kNumCycleBuckets; ++b) {
      w.cpi_stack[b] =
          sys_.cpi_bucket_cycles(static_cast<CycleBucket>(b)) - s0[b];
    }
    end_probe();
    if (w.insts > 0) {
      w.cpi = static_cast<double>(w.cycles) / static_cast<double>(w.insts);
      windows_.push_back(w);
    }
    ++window_;
    if (window_hook_) window_hook_(window_);
  }
  replay_advance(n_total_);
  emit_progress("functional", true);
  finalize(r);
  return r;
}

void TieredRunner::save(const std::string& path) const {
  sys_.save(path, [this](ckpt::CheckpointWriter& writer) {
    ckpt::Encoder& enc = writer.section("tiered");
    enc.put_bool(prepass_done_);
    enc.put_u64(n_total_);
    enc.put_u32(window_);
    enc.put_u32(static_cast<u32>(windows_.size()));
    for (const WindowStat& w : windows_) {
      enc.put_u64(w.start_inst);
      enc.put_u64(w.insts);
      enc.put_u64(w.cycles);
      enc.put_f64(w.cpi);
      for (const double v : w.cpi_stack) enc.put_f64(v);
    }
    enc.put_u64(insts_functional_);
    enc.put_u64(insts_detailed_);
    enc.put_u64(cycles_detailed_);
    // Stream replay state: the snapshot embeds the stream itself, so a
    // restore in another process (no StreamCache entry) is
    // self-contained and replays the identical schedule.
    enc.put_bool(detached_);
    enc.put_bool(stream_ != nullptr);
    if (stream_ != nullptr) {
      enc.put_u64(stream_->identity);
      enc.put_u32(stream_->num_threads);
      enc.put_i64(stream_->start_tid);
      enc.put_u64(stream_->n_total);
      enc.put_u64(stream_->records.size());
      enc.raw(stream_->records.data(), stream_->records.size());
      enc.put_u64(replayer_->pos());
    }
  });
}

void TieredRunner::restore(const std::string& path) {
  sys_.restore(path, [this](ckpt::CheckpointReader& reader) {
    ckpt::Decoder dec = reader.section("tiered");
    prepass_done_ = dec.get_bool();
    n_total_ = dec.get_u64();
    window_ = dec.get_u32();
    windows_.clear();
    const u32 n = dec.get_u32();
    for (u32 i = 0; i < n; ++i) {
      WindowStat w;
      w.start_inst = dec.get_u64();
      w.insts = dec.get_u64();
      w.cycles = dec.get_u64();
      w.cpi = dec.get_f64();
      for (double& v : w.cpi_stack) v = dec.get_f64();
      windows_.push_back(w);
    }
    insts_functional_ = dec.get_u64();
    insts_detailed_ = dec.get_u64();
    cycles_detailed_ = dec.get_u64();
    detached_ = dec.get_bool();
    stream_.reset();
    replayer_.reset();
    if (dec.get_bool()) {
      auto stream = std::make_shared<FuncStream>();
      stream->identity = dec.get_u64();
      stream->num_threads = dec.get_u32();
      stream->start_tid = static_cast<int>(dec.get_i64());
      stream->n_total = dec.get_u64();
      stream->records.resize(dec.get_u64());
      dec.raw(stream->records.data(), stream->records.size());
      stream_ = stream;
      replayer_ =
          std::make_unique<FuncStreamReplayer>(stream_, sys_.program());
      replayer_->seek(dec.get_u64());
    }
    dec.finish();
  });
}

}  // namespace virec::sim
