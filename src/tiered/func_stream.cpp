#include "tiered/func_stream.hpp"

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <system_error>

#include "isa/semantics.hpp"
#include "tiered/functional_executor.hpp"

namespace virec::sim {

namespace {

// Record layout, one per committed instruction. Everything derivable
// from the program and the replayer's own cursor state (tid, pc,
// is_mem/is_store, the destination register list, halt) is NOT stored.
//
//   u8 flags                      (bits below)
//   [varint next_pc]              when kFlagExplicitPc
//   [u8 nzcv]                     when kFlagNzcv
//   [varint addr]                 when is_mem(inst)
//   [varint stored value]         when is_store(inst)
//   [varint dst value]...         one per dst_regs(inst) entry
//   [varint sched next_tid + 1]   when kFlagSched (0 = pool exhausted)
constexpr u8 kFlagExplicitPc = 1;  // next_pc != pc + 1
constexpr u8 kFlagNzcv = 2;        // NZCV changed
constexpr u8 kFlagSched = 4;       // scheduler switched threads
constexpr u8 kFlagTaken = 8;       // ExecResult::taken_branch

void put_varint(std::vector<u8>& out, u64 v) {
  while (v >= 0x80) {
    out.push_back(static_cast<u8>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<u8>(v));
}

// Raw-pointer variant for the replay hot loop: decode_next executes
// once per replayed instruction, so the cursor lives in a register
// instead of round-tripping through the vector each byte.
u64 get_varint(const u8*& p, const u8* end) {
  u64 v = 0;
  u32 shift = 0;
  for (;;) {
    if (p >= end) {
      throw std::runtime_error("FuncStream: truncated record payload");
    }
    const u8 b = *p++;
    v |= static_cast<u64>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
}

/// Plain per-thread register files seeded like the offloaded contexts
/// (same shape as TieredRunner's prepass interpreter).
struct FlatRegFile final : isa::RegisterFileIO {
  std::vector<std::array<u64, isa::kNumAllocatableRegs>> regs;
  u64 read_reg(int tid, isa::RegId reg) override {
    return regs[static_cast<std::size_t>(tid)][reg];
  }
  void write_reg(int tid, isa::RegId reg, u64 value) override {
    regs[static_cast<std::size_t>(tid)][reg] = value;
  }
};

/// Deterministically cold tag-only LRU model of the dcache geometry.
/// Supplies the golden pass's load hit/miss schedule signal in place of
/// the live dcache, whose warm state is point-specific (probes, pin
/// bits) and must not leak into a shared stream.
class TagLruModel {
 public:
  TagLruModel(u32 num_sets, u32 assoc)
      : num_sets_(num_sets),
        assoc_(assoc),
        tags_(static_cast<std::size_t>(num_sets) * assoc, 0),
        valid_(static_cast<std::size_t>(num_sets) * assoc, 0) ,
        lru_(static_cast<std::size_t>(num_sets) * assoc, 0) {
    while ((u32{1} << shift_) < num_sets_) ++shift_;
  }

  bool access(Addr addr) {
    const u64 line = addr / mem::kLineBytes;
    const u32 set = static_cast<u32>(line & (num_sets_ - 1));
    const u64 tag = line >> shift_;
    const std::size_t base = static_cast<std::size_t>(set) * assoc_;
    for (u32 w = 0; w < assoc_; ++w) {
      if (valid_[base + w] && tags_[base + w] == tag) {
        lru_[base + w] = ++tick_;
        return true;
      }
    }
    std::size_t victim = base;
    for (u32 w = 0; w < assoc_; ++w) {
      if (!valid_[base + w]) {
        victim = base + w;
        break;
      }
      if (lru_[base + w] < lru_[victim]) victim = base + w;
    }
    valid_[victim] = 1;
    tags_[victim] = tag;
    lru_[victim] = ++tick_;
    return false;
  }

 private:
  u32 num_sets_;
  u32 assoc_;
  u32 shift_ = 0;
  u64 tick_ = 0;
  std::vector<u64> tags_;
  std::vector<u8> valid_;
  std::vector<u64> lru_;
};

int model_pick_next(const std::vector<u8>& halted, u32 n, int after,
                    int exclude) {
  // Mirror of FunctionalExecutor::pick_next (all threads started).
  const u32 base = after < 0 ? n - 1 : static_cast<u32>(after);
  for (u32 s = 1; s <= n; ++s) {
    const int tid = static_cast<int>((base + s) % n);
    if (tid == after || tid == exclude) continue;
    if (!halted[static_cast<std::size_t>(tid)]) return tid;
  }
  return -1;
}

std::string stream_file_name(const std::string& dir, u64 key) {
  char hex[17];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(key));
  return dir + "/" + hex + ".vfs";
}

constexpr u32 kStreamMagic = 0x31534656;  // "VFS1", little-endian
constexpr u32 kStreamFileVersion = 1;

}  // namespace

std::shared_ptr<const FuncStream> build_func_stream(System& system,
                                                    u64 identity) {
  if (system.config().num_cores != 1) {
    throw std::invalid_argument(
        "build_func_stream: single-core systems only");
  }
  const u32 total = system.total_threads();
  FlatRegFile rf;
  rf.regs.resize(total);
  std::vector<u8> nzcv(total, 0);
  for (u32 gtid = 0; gtid < total; ++gtid) {
    const workloads::RegContext regs =
        system.workload().thread_regs(system.params(), gtid, total);
    for (u32 r = 0; r < isa::kNumAllocatableRegs; ++r) {
      rf.regs[gtid][r] = regs[r];
    }
  }
  // Clone of the live memory (includes the offloaded context images),
  // so replay against the real system starts from the same bytes the
  // oracle's shadow captures.
  mem::SparseMemory memory = system.memory_system().memory();
  const kasm::Program& program = system.program();
  mem::MemorySystem& ms = system.memory_system();
  TagLruModel model(ms.dcache(0).num_sets(), ms.dcache(0).assoc());
  const bool switch_on_miss = system.config().core.switch_on_miss;
  const u64 cap = system.config().core.max_cycles;

  auto stream = std::make_shared<FuncStream>();
  stream->identity = identity;
  stream->num_threads = total;

  std::vector<u64> pcs(total, 0);
  std::vector<u8> halted(total, 0);
  u32 live = total;
  int cur = model_pick_next(halted, total, -1, -1);
  stream->start_tid = cur;
  u64 run_length = 0;
  u64 n = 0;
  std::vector<u8>& out = stream->records;

  while (live > 0) {
    if (cur < 0) {
      cur = model_pick_next(halted, total, -1, -1);
      run_length = 0;
      if (cur < 0) break;
    }
    const int tid = cur;
    const u64 pc = pcs[static_cast<std::size_t>(tid)];
    const isa::Inst& inst = program.at(pc);
    const bool mem_op = isa::is_mem(inst.op);
    const bool store_op = isa::is_store(inst.op);
    bool load_miss = false;
    Addr addr = 0;
    if (mem_op) {
      addr = isa::compute_mem_addr(inst, tid, rf);
      if (!ms.in_reg_region(addr)) {
        const bool hit = model.access(addr);
        load_miss = !hit && !store_op;
      }
    }
    u8& flags_ref = nzcv[static_cast<std::size_t>(tid)];
    const u8 nzcv_before = flags_ref;
    const isa::ExecResult res =
        isa::execute(inst, pc, tid, rf, memory, flags_ref);
    if (++n > cap) {
      throw std::runtime_error(
          "build_func_stream: golden pass exceeded the max_cycles "
          "instruction budget");
    }
    pcs[static_cast<std::size_t>(tid)] = res.next_pc;
    ++run_length;

    // Scheduler transition (mirrors FunctionalExecutor::run).
    int sched_next = -2;  // -2 = no event
    if (res.halted) {
      halted[static_cast<std::size_t>(tid)] = 1;
      --live;
      sched_next = model_pick_next(halted, total, tid, -1);
      cur = sched_next;
      run_length = 0;
    } else {
      const bool rotate =
          (load_miss && switch_on_miss) ||
          run_length >= FunctionalExecutor::kRotationPeriod;
      if (rotate && live > 1) {
        const int next = model_pick_next(halted, total, tid, -1);
        if (next >= 0 && next != tid) {
          sched_next = next;
          cur = next;
          run_length = 0;
        }
      }
    }

    u8 flags = 0;
    if (res.next_pc != pc + 1) flags |= kFlagExplicitPc;
    if (flags_ref != nzcv_before) flags |= kFlagNzcv;
    if (res.halted || sched_next != -2) flags |= kFlagSched;
    if (res.taken_branch) flags |= kFlagTaken;
    out.push_back(flags);
    if (flags & kFlagExplicitPc) put_varint(out, res.next_pc);
    if (flags & kFlagNzcv) out.push_back(flags_ref);
    if (mem_op) put_varint(out, addr);
    if (store_op) put_varint(out, memory.read(addr, isa::mem_size(inst.op)));
    const isa::RegList dsts = isa::dst_regs(inst);
    for (u32 i = 0; i < dsts.count; ++i) {
      put_varint(out, rf.read_reg(tid, dsts.regs[i]));
    }
    if (flags & kFlagSched) {
      put_varint(out, static_cast<u64>(sched_next + 1));  // 0 = exhausted
    }
  }
  stream->n_total = n;
  stream->records.shrink_to_fit();
  return stream;
}

// --- FuncStreamReplayer ---

struct FuncStreamReplayer::Decoded {
  u64 next_pc = 0;
  u8 nzcv = 0;
  bool nzcv_changed = false;
  bool taken = false;
  bool halted = false;
  bool has_sched = false;
  int sched_next = -1;
  bool mem_op = false;
  bool store_op = false;
  Addr addr = 0;
  u64 store_value = 0;
  std::array<u64, 4> dst_vals{};
  isa::RegList dsts{};  ///< destination list, decoded once per record
};

FuncStreamReplayer::FuncStreamReplayer(
    std::shared_ptr<const FuncStream> stream, const kasm::Program& program)
    : stream_(std::move(stream)),
      program_(&program),
      cur_tid_(stream_->start_tid),
      pcs_(stream_->num_threads, 0),
      halted_(stream_->num_threads, 0),
      live_(stream_->num_threads) {}

int FuncStreamReplayer::pick_next(int after, int exclude) const {
  return model_pick_next(halted_, stream_->num_threads, after, exclude);
}

FuncStreamReplayer::Decoded FuncStreamReplayer::decode_next(
    const isa::Inst*& inst, u64& pc) {
  if (cur_tid_ < 0) cur_tid_ = pick_next(-1, -1);
  if (cur_tid_ < 0) {
    throw std::runtime_error("FuncStream: record with no live thread");
  }
  const std::vector<u8>& bytes = stream_->records;
  const u8* p = bytes.data() + byte_;
  const u8* const end = bytes.data() + bytes.size();
  if (p >= end) {
    throw std::runtime_error("FuncStream: cursor past end of records");
  }
  pc = pcs_[static_cast<std::size_t>(cur_tid_)];
  inst = &program_->at(pc);
  Decoded d;
  const u8 flags = *p++;
  d.taken = (flags & kFlagTaken) != 0;
  d.halted = isa::is_halt(inst->op);
  d.next_pc = (flags & kFlagExplicitPc) ? get_varint(p, end) : pc + 1;
  d.nzcv_changed = (flags & kFlagNzcv) != 0;
  if (d.nzcv_changed) {
    if (p >= end) {
      throw std::runtime_error("FuncStream: truncated record payload");
    }
    d.nzcv = *p++;
  }
  d.mem_op = isa::is_mem(inst->op);
  d.store_op = isa::is_store(inst->op);
  if (d.mem_op) d.addr = get_varint(p, end);
  if (d.store_op) d.store_value = get_varint(p, end);
  d.dsts = isa::dst_regs(*inst);
  for (u32 i = 0; i < d.dsts.count; ++i) {
    d.dst_vals[i] = get_varint(p, end);
  }
  d.has_sched = (flags & kFlagSched) != 0;
  if (d.has_sched) {
    d.sched_next = static_cast<int>(get_varint(p, end)) - 1;
  }
  byte_ = static_cast<std::size_t>(p - bytes.data());
  return d;
}

Cycle FuncStreamReplayer::advance(u64 target, cpu::CgmtCore& core,
                                  cpu::ContextManager& rcm,
                                  mem::MemorySystem& ms,
                                  check::CheckContext* check,
                                  Cycle warm_clock, u64 cpi_scale) {
  if (cpi_scale == 0) cpi_scale = 1;
  if (target > stream_->n_total) target = stream_->n_total;
  mem::Cache& icache = ms.icache(0);
  mem::Cache& dcache = ms.dcache(0);
  while (pos_ < target) {
    const isa::Inst* inst = nullptr;
    u64 pc = 0;
    const Decoded d = decode_next(inst, pc);
    const int tid = cur_tid_;
    if (!core.thread_launched(tid)) {
      rcm.warm_thread_start(tid, warm_clock);
      core.mark_thread_launched(tid);
    }
    icache.warm_access(mem::MemorySystem::code_addr(pc), /*is_write=*/false,
                       warm_clock);
    rcm.warm_decode(tid, *inst, warm_clock);
    if (d.mem_op) {
      dcache.warm_access(d.addr, d.store_op, warm_clock,
                         ms.in_reg_region(d.addr));
    }
    u8& nzcv = core.nzcv_ref(tid);
    if (check != nullptr) {
      check->pre_commit(/*core=*/0, tid, *inst, pc, warm_clock, rcm, nzcv);
    }
    // Apply the recorded architectural deltas in commit order: memory
    // write-back, destination registers (through the scheme's canonical
    // write path, so residency/dirty state evolves like live
    // execution), then flags.
    if (d.store_op) {
      ms.memory().write(d.addr, isa::mem_size(inst->op), d.store_value);
    }
    for (u32 i = 0; i < d.dsts.count; ++i) {
      rcm.write_reg(tid, d.dsts.regs[i], d.dst_vals[i]);
    }
    if (d.nzcv_changed) nzcv = d.nzcv;
    const isa::ExecResult res{d.next_pc, d.taken, d.halted};
    if (check != nullptr) {
      check->post_commit(/*core=*/0, tid, *inst, pc, warm_clock, rcm, nzcv,
                         res);
    }
    core.set_thread_pc(tid, d.next_pc);
    pcs_[static_cast<std::size_t>(tid)] = d.next_pc;
    warm_clock += cpi_scale;
    ++pos_;
    if (d.halted) {
      rcm.warm_thread_halt(tid, warm_clock);
      core.halt_thread_functional(tid);
      halted_[static_cast<std::size_t>(tid)] = 1;
      --live_;
      if (d.sched_next >= 0) {
        rcm.warm_context_switch(tid, d.sched_next,
                                pick_next(d.sched_next, tid), warm_clock);
      }
      cur_tid_ = d.sched_next;
    } else if (d.has_sched) {
      rcm.warm_context_switch(tid, d.sched_next,
                              pick_next(d.sched_next, tid), warm_clock);
      cur_tid_ = d.sched_next;
    }
  }
  return warm_clock;
}

void FuncStreamReplayer::seek(u64 target) {
  if (target > stream_->n_total) target = stream_->n_total;
  while (pos_ < target) {
    const isa::Inst* inst = nullptr;
    u64 pc = 0;
    const Decoded d = decode_next(inst, pc);
    const int tid = cur_tid_;
    pcs_[static_cast<std::size_t>(tid)] = d.next_pc;
    ++pos_;
    if (d.halted) {
      halted_[static_cast<std::size_t>(tid)] = 1;
      --live_;
      cur_tid_ = d.sched_next;
    } else if (d.has_sched) {
      cur_tid_ = d.sched_next;
    }
  }
}

// --- Disk codec ---

std::shared_ptr<const FuncStream> load_func_stream(const std::string& path,
                                                   u64 expect_identity) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return nullptr;
  std::vector<char> raw((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) return nullptr;
  if (raw.size() < 4) return nullptr;
  const std::size_t body = raw.size() - 4;
  ckpt::Decoder crc_dec(reinterpret_cast<const u8*>(raw.data()) + body, 4,
                        "stream crc");
  if (ckpt::crc32(raw.data(), body) != crc_dec.get_u32()) return nullptr;
  try {
    ckpt::Decoder dec(reinterpret_cast<const u8*>(raw.data()), body,
                      "stream file");
    if (dec.get_u32() != kStreamMagic) return nullptr;
    if (dec.get_u32() != kStreamFileVersion) return nullptr;
    auto stream = std::make_shared<FuncStream>();
    stream->identity = dec.get_u64();
    if (expect_identity != 0 && stream->identity != expect_identity) {
      return nullptr;
    }
    stream->num_threads = dec.get_u32();
    stream->start_tid = static_cast<int>(dec.get_i64());
    stream->n_total = dec.get_u64();
    const u64 size = dec.get_u64();
    if (size != dec.remaining()) return nullptr;
    stream->records.resize(size);
    dec.raw(stream->records.data(), size);
    return stream;
  } catch (const ckpt::CkptError&) {
    return nullptr;
  }
}

bool save_func_stream(const std::string& path, const FuncStream& stream) {
  ckpt::Encoder enc;
  enc.put_u32(kStreamMagic);
  enc.put_u32(kStreamFileVersion);
  enc.put_u64(stream.identity);
  enc.put_u32(stream.num_threads);
  enc.put_i64(stream.start_tid);
  enc.put_u64(stream.n_total);
  enc.put_u64(stream.records.size());
  enc.raw(stream.records.data(), stream.records.size());
  const u32 crc = ckpt::crc32(enc.bytes().data(), enc.size());
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(reinterpret_cast<const char*>(enc.bytes().data()),
              static_cast<std::streamsize>(enc.size()));
    char crc_bytes[4] = {static_cast<char>(crc), static_cast<char>(crc >> 8),
                         static_cast<char>(crc >> 16),
                         static_cast<char>(crc >> 24)};
    out.write(crc_bytes, 4);
    out.flush();
    if (!out.good()) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

// --- StreamCache ---

StreamCache& StreamCache::instance() {
  static StreamCache cache;
  return cache;
}

std::shared_ptr<const FuncStream> StreamCache::acquire(
    u64 key, const std::string& dir, System& system) {
  if (key == 0) {
    auto stream = build_func_stream(system, 0);
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.built;
    return stream;
  }
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    auto it = streams_.find(key);
    if (it != streams_.end()) {
      ++stats_.mem_hits;
      return it->second;
    }
    if (building_.find(key) == building_.end()) break;
    cv_.wait(lk);
  }
  building_.insert(key);
  lk.unlock();
  std::shared_ptr<const FuncStream> stream;
  bool from_disk = false;
  try {
    if (!dir.empty()) {
      stream = load_func_stream(stream_file_name(dir, key), key);
      from_disk = stream != nullptr;
    }
    if (stream == nullptr) {
      stream = build_func_stream(system, key);
      if (!dir.empty()) {
        // Best-effort persistence: a missing store directory is
        // created here; any failure just means the next process
        // rebuilds instead of loading.
        std::error_code ec;
        std::filesystem::create_directories(dir, ec);
        if (!ec) save_func_stream(stream_file_name(dir, key), *stream);
      }
    }
  } catch (...) {
    lk.lock();
    building_.erase(key);
    cv_.notify_all();
    throw;
  }
  lk.lock();
  building_.erase(key);
  streams_[key] = stream;
  if (from_disk) {
    ++stats_.loaded;
  } else {
    ++stats_.built;
  }
  cv_.notify_all();
  return stream;
}

StreamCache::Stats StreamCache::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

void StreamCache::reset_for_test() {
  std::lock_guard<std::mutex> lk(mu_);
  streams_.clear();
  building_.clear();
  stats_ = Stats{};
}

}  // namespace virec::sim
