// Tiered simulation: SMARTS-style systematic sampling over a single
// golden execution stream (docs/performance.md).
//
// One persistent System carries the run. Sampled runs are driven by a
// recorded functional stream (tiered/func_stream.hpp): replaying its
// records through the point's warm hooks advances architectural state
// at interpreter speed while keeping caches / register-cache residency
// warm, and the stream is shared across every point of a sweep with
// the same functional identity — the prepass cost is paid once per
// sweep, not once per point. Each measurement window is a detailed
// *probe*: the cycle-accurate pipeline re-attaches, burns a warm-up
// prefix (W instructions, optionally extended adaptively) and measures
// K instructions of CPI + CPI stack; afterwards the probe's
// architectural effects (memory via an undo journal, registers and
// thread PCs/NZCV/halts via snapshots) are reverted, so the replayed
// stream remains the sole driver of architectural progress and every
// probe measures exactly the golden execution. Microarchitectural warm
// state (caches, register-cache residency) deliberately carries
// across. The per-window CPIs give a sampled mean with a confidence
// interval from inter-window variance.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/system.hpp"
#include "tiered/func_stream.hpp"

namespace virec::sim {

struct TieredConfig {
  /// Measurement windows (N). 0 together with !functional_ff means
  /// "no tiering" — callers should use System::run() directly.
  u32 sample_windows = 0;
  /// Measured instructions per window (K).
  u64 window_insts = 10'000;
  /// Detailed warm-up instructions burned before each window (W).
  u64 warmup_insts = 2'000;
  /// Run the entire program through the functional tier (no windows,
  /// no cycle estimate) — fast-forward-to-end, used for validation and
  /// as the fast path to a final memory image.
  bool functional_ff = false;
  /// Adaptive warm-up multiplier F (>= 1): a probe may extend its
  /// warm-up by further warmup_insts chunks — up to F chunks in total,
  /// and never past the stratum's slack — while the dcache miss rate
  /// of consecutive chunks is still converging. Bulk-transfer schemes
  /// (full context save/restore) disturb far more cache state per
  /// switch than register-cache schemes, so a fixed W that is fair to
  /// one is unfair to the other. 1 = fixed warm-up. Ignored by
  /// functional_ff.
  u32 adaptive_warmup = 1;
  /// Set-sampled cache warming factor K (power of two, >= 1): between
  /// detailed stretches only dcache sets with index % K == 0 are
  /// warmed (Cache::set_warm_set_sample). K > 1 is opt-in and
  /// *approximate* — see the bias note on set_warm_set_sample —
  /// 1 restores exact warming. Ignored by functional_ff.
  u32 warm_set_sample = 1;
  /// Functional identity of the run (ckpt::functional_stream_hash):
  /// sampled runs replay a recorded functional stream, and points
  /// sharing a nonzero key share one recorded stream per process
  /// (StreamCache). 0 = build a private stream (reuse off); estimates
  /// are bit-identical either way.
  u64 stream_key = 0;
  /// Directory for persisted streams ("" = in-memory sharing only).
  std::string stream_dir;

  /// Throws std::invalid_argument on nonsensical combinations
  /// (zero-size windows, functional_ff together with windows, zero or
  /// non-power-of-two warming knobs).
  void validate() const;
};

/// One measurement window.
struct WindowStat {
  u64 start_inst = 0;  ///< committed instructions when measurement began
  u64 insts = 0;       ///< instructions measured (== K except at the tail)
  Cycle cycles = 0;    ///< detailed cycles they took
  double cpi = 0.0;
  /// Cycle-accounting deltas over the measured stretch.
  std::array<double, kNumCycleBuckets> cpi_stack{};
};

/// Heartbeat of a tiered run (tier-aware --progress): ETA is
/// instruction-based with a separate measured rate per tier, since
/// cycles/sec differs by orders of magnitude between tiers.
struct TieredProgress {
  const char* tier = "";  ///< "prepass" | "functional" | "detailed"
  u64 insts_done = 0;     ///< committed so far (both tiers)
  u64 insts_total = 0;    ///< prepass total (0 while prepassing)
  u32 window = 0;         ///< completed measurement windows
  u32 windows = 0;
  double wall_secs = 0.0;
  double eta_secs = 0.0;  ///< 0 when no rate has been measured yet
};

struct TieredResult {
  /// Final result through System::make_result(): workload check over
  /// the (bit-exact) functional+detailed memory image, totals over
  /// both tiers. `full.cycles`/`full.ipc` mix warm-clock and detailed
  /// cycles — use est_* for performance numbers.
  RunResult full;
  u64 total_insts = 0;  ///< from the functional prepass
  std::vector<WindowStat> windows;
  double cpi_mean = 0.0;     ///< mean of the per-window CPIs
  double cpi_ci_half = 0.0;  ///< t_{95%,n-1} * s / sqrt(n); 0 when n < 2
  /// Stratified estimate: exact cycles of the detailed stretches plus
  /// cpi_mean extrapolated over the functional instructions.
  double est_cycles = 0.0;
  double est_ipc = 0.0;      ///< total_insts / est_cycles
  double est_ipc_lo = 0.0;   ///< from cpi_mean + ci_half
  double est_ipc_hi = 0.0;   ///< from cpi_mean - ci_half
  u64 insts_functional = 0;
  u64 insts_detailed = 0;    ///< warm-up + measured
  double wall_secs_functional = 0.0;
  double wall_secs_detailed = 0.0;
};

class TieredRunner {
 public:
  /// @p system must be freshly constructed (or restored from a
  /// checkpoint written by another TieredRunner) and single-core.
  TieredRunner(System& system, const TieredConfig& config);

  /// Execute the tiered run to completion and return the estimates.
  TieredResult run();

  /// Emit TieredProgress heartbeats roughly every @p every_secs of
  /// wall time (nullptr detaches).
  void set_progress(std::function<void(const TieredProgress&)> fn,
                    double every_secs = 1.0);

  /// Invoked after each completed measurement window (with the number
  /// of windows completed so far). The runner is checkpointable inside
  /// this hook — see save().
  void set_window_hook(std::function<void(u32)> hook) {
    window_hook_ = std::move(hook);
  }

  /// Checkpoint the sampled run. Valid at window boundaries (inside
  /// the window hook, or before/after run()); the snapshot carries the
  /// System state plus a "tiered" section with the sampling plan and
  /// completed windows.
  void save(const std::string& path) const;

  /// Restore a snapshot written by save() on an identically configured
  /// runner; a subsequent run() continues the remaining windows and
  /// produces the same estimates as an uninterrupted run (wall-time
  /// fields restart from the restore point).
  void restore(const std::string& path);

  /// Pure functional prepass: total instructions the workload commits,
  /// executed against a clone of the system's current memory at
  /// interpreter speed (the system itself is untouched). Deterministic
  /// and interleave-independent (workload threads are
  /// data-independent).
  static u64 functional_instruction_count(System& system);

 private:
  void functional_advance(u64 insts);
  /// Replay stream records up to golden position @p target through the
  /// system's warm hooks (cutting the pipeline first if attached) and
  /// re-attach. Instructions a reverted probe already committed are
  /// absorbed into the credit, so the commit count lands on @p target.
  void replay_advance(u64 target);
  /// Begin a detailed probe: disable the lockstep oracle, snapshot
  /// per-thread registers and scheduling state, open the memory undo
  /// journal.
  void begin_probe();
  /// End a detailed probe: squash the pipeline (cut), roll back
  /// memory, diff-restore registers through the context manager's
  /// canonical write path, revert thread PCs/NZCV/halts, re-enable the
  /// oracle. Leaves the core detached (replay_advance re-attaches).
  void end_probe();
  void run_detailed(u64 insts);
  /// Adaptive warm-up: after the base W chunk, run up to
  /// adaptive_warmup - 1 further W chunks (bounded by the stratum
  /// slack) until the per-chunk dcache miss rate converges.
  void adaptive_warmup_extend(u64 spacing, u64 wk);
  void emit_progress(const char* tier, bool force);
  void finalize(TieredResult& r);
  /// Warm-clock cycles per functional instruction: the running CPI of
  /// the detailed stretches so far (1 until one has run). Keeps warm
  /// recency stamps spaced like detailed ones, so replacement decisions
  /// made on warm state match the detailed model's.
  u64 cpi_scale() const;

  System& sys_;
  TieredConfig config_;
  // Resumable progress (checkpointed in the "tiered" section).
  bool prepass_done_ = false;
  u64 n_total_ = 0;
  u32 window_ = 0;  // completed windows
  std::vector<WindowStat> windows_;
  u64 insts_functional_ = 0;
  u64 insts_detailed_ = 0;
  Cycle cycles_detailed_ = 0;  // detailed cycles backing cpi_scale()
  // Stream replay state (sampled path; stream embedded in snapshots).
  std::shared_ptr<const FuncStream> stream_;
  std::unique_ptr<FuncStreamReplayer> replayer_;
  bool detached_ = false;  // core cut, not yet resumed (checkpointed)
  // Probe revert buffers (live only between begin_/end_probe).
  std::vector<std::array<u64, isa::kNumAllocatableRegs>> probe_regs_;
  std::vector<cpu::CgmtCore::ThreadProbeState> probe_threads_;
  std::vector<u8> probe_launched_;  // launch state at begin_probe
  // Instructions executed in the current functional phase but not yet
  // folded into the core's commit count (progress reporting only).
  u64 pending_functional_ = 0;
  // Wall-clock accounting (not checkpointed).
  double wall_functional_ = 0.0;
  double wall_detailed_ = 0.0;
  // Progress plumbing.
  std::function<void(const TieredProgress&)> progress_;
  double progress_every_secs_ = 1.0;
  double next_emit_wall_ = 0.0;
  double wall_start_ = 0.0;
  std::function<void(u32)> window_hook_;
};

}  // namespace virec::sim
