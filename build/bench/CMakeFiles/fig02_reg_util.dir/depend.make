# Empty dependencies file for fig02_reg_util.
# This may be replaced when dependencies are built.
