file(REMOVE_RECURSE
  "CMakeFiles/fig10_perf_per_reg.dir/fig10_perf_per_reg.cpp.o"
  "CMakeFiles/fig10_perf_per_reg.dir/fig10_perf_per_reg.cpp.o.d"
  "fig10_perf_per_reg"
  "fig10_perf_per_reg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_perf_per_reg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
