# Empty compiler generated dependencies file for fig10_perf_per_reg.
# This may be replaced when dependencies are built.
