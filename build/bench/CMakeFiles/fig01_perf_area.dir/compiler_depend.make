# Empty compiler generated dependencies file for fig01_perf_area.
# This may be replaced when dependencies are built.
