file(REMOVE_RECURSE
  "CMakeFiles/fig01_perf_area.dir/fig01_perf_area.cpp.o"
  "CMakeFiles/fig01_perf_area.dir/fig01_perf_area.cpp.o.d"
  "fig01_perf_area"
  "fig01_perf_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_perf_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
