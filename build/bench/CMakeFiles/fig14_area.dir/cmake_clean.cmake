file(REMOVE_RECURSE
  "CMakeFiles/fig14_area.dir/fig14_area.cpp.o"
  "CMakeFiles/fig14_area.dir/fig14_area.cpp.o.d"
  "fig14_area"
  "fig14_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
