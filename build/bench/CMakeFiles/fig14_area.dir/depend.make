# Empty dependencies file for fig14_area.
# This may be replaced when dependencies are built.
