file(REMOVE_RECURSE
  "CMakeFiles/ablation_policy_bound.dir/ablation_policy_bound.cpp.o"
  "CMakeFiles/ablation_policy_bound.dir/ablation_policy_bound.cpp.o.d"
  "ablation_policy_bound"
  "ablation_policy_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_policy_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
