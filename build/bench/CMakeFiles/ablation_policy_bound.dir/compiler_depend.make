# Empty compiler generated dependencies file for ablation_policy_bound.
# This may be replaced when dependencies are built.
