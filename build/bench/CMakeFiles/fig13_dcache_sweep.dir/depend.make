# Empty dependencies file for fig13_dcache_sweep.
# This may be replaced when dependencies are built.
