file(REMOVE_RECURSE
  "CMakeFiles/fig12_policy_hitrate.dir/fig12_policy_hitrate.cpp.o"
  "CMakeFiles/fig12_policy_hitrate.dir/fig12_policy_hitrate.cpp.o.d"
  "fig12_policy_hitrate"
  "fig12_policy_hitrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_policy_hitrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
