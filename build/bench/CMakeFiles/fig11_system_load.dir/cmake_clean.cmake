file(REMOVE_RECURSE
  "CMakeFiles/fig11_system_load.dir/fig11_system_load.cpp.o"
  "CMakeFiles/fig11_system_load.dir/fig11_system_load.cpp.o.d"
  "fig11_system_load"
  "fig11_system_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_system_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
