# Empty compiler generated dependencies file for fig11_system_load.
# This may be replaced when dependencies are built.
