file(REMOVE_RECURSE
  "CMakeFiles/test_store_queue.dir/test_store_queue.cpp.o"
  "CMakeFiles/test_store_queue.dir/test_store_queue.cpp.o.d"
  "test_store_queue"
  "test_store_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_store_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
