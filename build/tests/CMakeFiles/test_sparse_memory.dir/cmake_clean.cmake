file(REMOVE_RECURSE
  "CMakeFiles/test_sparse_memory.dir/test_sparse_memory.cpp.o"
  "CMakeFiles/test_sparse_memory.dir/test_sparse_memory.cpp.o.d"
  "test_sparse_memory"
  "test_sparse_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparse_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
