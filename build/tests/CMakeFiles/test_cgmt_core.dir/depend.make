# Empty dependencies file for test_cgmt_core.
# This may be replaced when dependencies are built.
