file(REMOVE_RECURSE
  "CMakeFiles/test_cgmt_core.dir/test_cgmt_core.cpp.o"
  "CMakeFiles/test_cgmt_core.dir/test_cgmt_core.cpp.o.d"
  "test_cgmt_core"
  "test_cgmt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cgmt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
