# Empty dependencies file for test_semantics_random.
# This may be replaced when dependencies are built.
