file(REMOVE_RECURSE
  "CMakeFiles/test_semantics_random.dir/test_semantics_random.cpp.o"
  "CMakeFiles/test_semantics_random.dir/test_semantics_random.cpp.o.d"
  "test_semantics_random"
  "test_semantics_random.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_semantics_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
