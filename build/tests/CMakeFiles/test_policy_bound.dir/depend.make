# Empty dependencies file for test_policy_bound.
# This may be replaced when dependencies are built.
