file(REMOVE_RECURSE
  "CMakeFiles/test_policy_bound.dir/test_policy_bound.cpp.o"
  "CMakeFiles/test_policy_bound.dir/test_policy_bound.cpp.o.d"
  "test_policy_bound"
  "test_policy_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_policy_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
