file(REMOVE_RECURSE
  "CMakeFiles/test_managers.dir/test_managers.cpp.o"
  "CMakeFiles/test_managers.dir/test_managers.cpp.o.d"
  "test_managers"
  "test_managers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_managers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
