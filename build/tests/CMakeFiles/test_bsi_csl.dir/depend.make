# Empty dependencies file for test_bsi_csl.
# This may be replaced when dependencies are built.
