file(REMOVE_RECURSE
  "CMakeFiles/test_bsi_csl.dir/test_bsi_csl.cpp.o"
  "CMakeFiles/test_bsi_csl.dir/test_bsi_csl.cpp.o.d"
  "test_bsi_csl"
  "test_bsi_csl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bsi_csl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
