file(REMOVE_RECURSE
  "CMakeFiles/test_virec_manager.dir/test_virec_manager.cpp.o"
  "CMakeFiles/test_virec_manager.dir/test_virec_manager.cpp.o.d"
  "test_virec_manager"
  "test_virec_manager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_virec_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
