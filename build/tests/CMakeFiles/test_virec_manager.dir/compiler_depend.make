# Empty compiler generated dependencies file for test_virec_manager.
# This may be replaced when dependencies are built.
