file(REMOVE_RECURSE
  "CMakeFiles/test_tag_store.dir/test_tag_store.cpp.o"
  "CMakeFiles/test_tag_store.dir/test_tag_store.cpp.o.d"
  "test_tag_store"
  "test_tag_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tag_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
