# Empty dependencies file for test_rollback_queue.
# This may be replaced when dependencies are built.
