file(REMOVE_RECURSE
  "CMakeFiles/test_rollback_queue.dir/test_rollback_queue.cpp.o"
  "CMakeFiles/test_rollback_queue.dir/test_rollback_queue.cpp.o.d"
  "test_rollback_queue"
  "test_rollback_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rollback_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
