# Empty dependencies file for virec.
# This may be replaced when dependencies are built.
