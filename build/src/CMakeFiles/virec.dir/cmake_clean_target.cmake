file(REMOVE_RECURSE
  "libvirec.a"
)
