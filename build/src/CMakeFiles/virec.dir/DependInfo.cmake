
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/policy_sim.cpp" "src/CMakeFiles/virec.dir/analysis/policy_sim.cpp.o" "gcc" "src/CMakeFiles/virec.dir/analysis/policy_sim.cpp.o.d"
  "/root/repo/src/analysis/reg_usage.cpp" "src/CMakeFiles/virec.dir/analysis/reg_usage.cpp.o" "gcc" "src/CMakeFiles/virec.dir/analysis/reg_usage.cpp.o.d"
  "/root/repo/src/analysis/reuse_distance.cpp" "src/CMakeFiles/virec.dir/analysis/reuse_distance.cpp.o" "gcc" "src/CMakeFiles/virec.dir/analysis/reuse_distance.cpp.o.d"
  "/root/repo/src/area/area_model.cpp" "src/CMakeFiles/virec.dir/area/area_model.cpp.o" "gcc" "src/CMakeFiles/virec.dir/area/area_model.cpp.o.d"
  "/root/repo/src/area/components.cpp" "src/CMakeFiles/virec.dir/area/components.cpp.o" "gcc" "src/CMakeFiles/virec.dir/area/components.cpp.o.d"
  "/root/repo/src/area/technology.cpp" "src/CMakeFiles/virec.dir/area/technology.cpp.o" "gcc" "src/CMakeFiles/virec.dir/area/technology.cpp.o.d"
  "/root/repo/src/common/log.cpp" "src/CMakeFiles/virec.dir/common/log.cpp.o" "gcc" "src/CMakeFiles/virec.dir/common/log.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "src/CMakeFiles/virec.dir/common/stats.cpp.o" "gcc" "src/CMakeFiles/virec.dir/common/stats.cpp.o.d"
  "/root/repo/src/common/table.cpp" "src/CMakeFiles/virec.dir/common/table.cpp.o" "gcc" "src/CMakeFiles/virec.dir/common/table.cpp.o.d"
  "/root/repo/src/core/backing_store_interface.cpp" "src/CMakeFiles/virec.dir/core/backing_store_interface.cpp.o" "gcc" "src/CMakeFiles/virec.dir/core/backing_store_interface.cpp.o.d"
  "/root/repo/src/core/context_switch_logic.cpp" "src/CMakeFiles/virec.dir/core/context_switch_logic.cpp.o" "gcc" "src/CMakeFiles/virec.dir/core/context_switch_logic.cpp.o.d"
  "/root/repo/src/core/replacement_policy.cpp" "src/CMakeFiles/virec.dir/core/replacement_policy.cpp.o" "gcc" "src/CMakeFiles/virec.dir/core/replacement_policy.cpp.o.d"
  "/root/repo/src/core/rollback_queue.cpp" "src/CMakeFiles/virec.dir/core/rollback_queue.cpp.o" "gcc" "src/CMakeFiles/virec.dir/core/rollback_queue.cpp.o.d"
  "/root/repo/src/core/tag_store.cpp" "src/CMakeFiles/virec.dir/core/tag_store.cpp.o" "gcc" "src/CMakeFiles/virec.dir/core/tag_store.cpp.o.d"
  "/root/repo/src/core/virec_manager.cpp" "src/CMakeFiles/virec.dir/core/virec_manager.cpp.o" "gcc" "src/CMakeFiles/virec.dir/core/virec_manager.cpp.o.d"
  "/root/repo/src/cpu/banked_manager.cpp" "src/CMakeFiles/virec.dir/cpu/banked_manager.cpp.o" "gcc" "src/CMakeFiles/virec.dir/cpu/banked_manager.cpp.o.d"
  "/root/repo/src/cpu/cgmt_core.cpp" "src/CMakeFiles/virec.dir/cpu/cgmt_core.cpp.o" "gcc" "src/CMakeFiles/virec.dir/cpu/cgmt_core.cpp.o.d"
  "/root/repo/src/cpu/context_manager.cpp" "src/CMakeFiles/virec.dir/cpu/context_manager.cpp.o" "gcc" "src/CMakeFiles/virec.dir/cpu/context_manager.cpp.o.d"
  "/root/repo/src/cpu/ooo_core.cpp" "src/CMakeFiles/virec.dir/cpu/ooo_core.cpp.o" "gcc" "src/CMakeFiles/virec.dir/cpu/ooo_core.cpp.o.d"
  "/root/repo/src/cpu/prefetch_manager.cpp" "src/CMakeFiles/virec.dir/cpu/prefetch_manager.cpp.o" "gcc" "src/CMakeFiles/virec.dir/cpu/prefetch_manager.cpp.o.d"
  "/root/repo/src/cpu/software_manager.cpp" "src/CMakeFiles/virec.dir/cpu/software_manager.cpp.o" "gcc" "src/CMakeFiles/virec.dir/cpu/software_manager.cpp.o.d"
  "/root/repo/src/cpu/store_queue.cpp" "src/CMakeFiles/virec.dir/cpu/store_queue.cpp.o" "gcc" "src/CMakeFiles/virec.dir/cpu/store_queue.cpp.o.d"
  "/root/repo/src/cpu/trace.cpp" "src/CMakeFiles/virec.dir/cpu/trace.cpp.o" "gcc" "src/CMakeFiles/virec.dir/cpu/trace.cpp.o.d"
  "/root/repo/src/isa/disasm.cpp" "src/CMakeFiles/virec.dir/isa/disasm.cpp.o" "gcc" "src/CMakeFiles/virec.dir/isa/disasm.cpp.o.d"
  "/root/repo/src/isa/inst.cpp" "src/CMakeFiles/virec.dir/isa/inst.cpp.o" "gcc" "src/CMakeFiles/virec.dir/isa/inst.cpp.o.d"
  "/root/repo/src/isa/semantics.cpp" "src/CMakeFiles/virec.dir/isa/semantics.cpp.o" "gcc" "src/CMakeFiles/virec.dir/isa/semantics.cpp.o.d"
  "/root/repo/src/kasm/assembler.cpp" "src/CMakeFiles/virec.dir/kasm/assembler.cpp.o" "gcc" "src/CMakeFiles/virec.dir/kasm/assembler.cpp.o.d"
  "/root/repo/src/kasm/builder.cpp" "src/CMakeFiles/virec.dir/kasm/builder.cpp.o" "gcc" "src/CMakeFiles/virec.dir/kasm/builder.cpp.o.d"
  "/root/repo/src/kasm/program.cpp" "src/CMakeFiles/virec.dir/kasm/program.cpp.o" "gcc" "src/CMakeFiles/virec.dir/kasm/program.cpp.o.d"
  "/root/repo/src/mem/cache.cpp" "src/CMakeFiles/virec.dir/mem/cache.cpp.o" "gcc" "src/CMakeFiles/virec.dir/mem/cache.cpp.o.d"
  "/root/repo/src/mem/crossbar.cpp" "src/CMakeFiles/virec.dir/mem/crossbar.cpp.o" "gcc" "src/CMakeFiles/virec.dir/mem/crossbar.cpp.o.d"
  "/root/repo/src/mem/dram.cpp" "src/CMakeFiles/virec.dir/mem/dram.cpp.o" "gcc" "src/CMakeFiles/virec.dir/mem/dram.cpp.o.d"
  "/root/repo/src/mem/memory_system.cpp" "src/CMakeFiles/virec.dir/mem/memory_system.cpp.o" "gcc" "src/CMakeFiles/virec.dir/mem/memory_system.cpp.o.d"
  "/root/repo/src/mem/sparse_memory.cpp" "src/CMakeFiles/virec.dir/mem/sparse_memory.cpp.o" "gcc" "src/CMakeFiles/virec.dir/mem/sparse_memory.cpp.o.d"
  "/root/repo/src/sim/runner.cpp" "src/CMakeFiles/virec.dir/sim/runner.cpp.o" "gcc" "src/CMakeFiles/virec.dir/sim/runner.cpp.o.d"
  "/root/repo/src/sim/sweep.cpp" "src/CMakeFiles/virec.dir/sim/sweep.cpp.o" "gcc" "src/CMakeFiles/virec.dir/sim/sweep.cpp.o.d"
  "/root/repo/src/sim/system.cpp" "src/CMakeFiles/virec.dir/sim/system.cpp.o" "gcc" "src/CMakeFiles/virec.dir/sim/system.cpp.o.d"
  "/root/repo/src/sim/system_config.cpp" "src/CMakeFiles/virec.dir/sim/system_config.cpp.o" "gcc" "src/CMakeFiles/virec.dir/sim/system_config.cpp.o.d"
  "/root/repo/src/workloads/kernels.cpp" "src/CMakeFiles/virec.dir/workloads/kernels.cpp.o" "gcc" "src/CMakeFiles/virec.dir/workloads/kernels.cpp.o.d"
  "/root/repo/src/workloads/workload.cpp" "src/CMakeFiles/virec.dir/workloads/workload.cpp.o" "gcc" "src/CMakeFiles/virec.dir/workloads/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
