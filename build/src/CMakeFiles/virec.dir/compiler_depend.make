# Empty compiler generated dependencies file for virec.
# This may be replaced when dependencies are built.
