file(REMOVE_RECURSE
  "CMakeFiles/virec-sim.dir/virec_sim.cpp.o"
  "CMakeFiles/virec-sim.dir/virec_sim.cpp.o.d"
  "virec-sim"
  "virec-sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/virec-sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
