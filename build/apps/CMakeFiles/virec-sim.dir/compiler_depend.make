# Empty compiler generated dependencies file for virec-sim.
# This may be replaced when dependencies are built.
